"""Phase 1 of the whole-program analyzer: per-file fact extraction.

The two-phase engine (see ``docs/STATIC_ANALYSIS.md``) splits analysis
into *fact extraction* — one pass over each file's AST producing a
JSON-serializable :class:`FileFacts` — and *whole-program rules* that
consume the facts of every file at once (lock-order derivation, taint
propagation over the call graph).  Facts are deliberately plain data:

- they can be cached by content hash (:mod:`tools.reprolint.cache`), so
  a warm ``make lint`` never re-parses an unchanged file;
- whole-program rules never touch an AST, which keeps phase 2 cheap
  enough to run on every lint invocation.

What is recorded per function (:class:`FunctionFacts`):

- **lock activity** — every ``with``-item and explicit ``.acquire()`` /
  ``.release()`` call, each with the stack of regions lexically held at
  that point.  Items are recorded *raw* (the receiver's dotted text);
  phase 2 decides which receivers denote locks.
- **calls** — every call site with its callee text and held stack, the
  edges the project call graph is built from.
- **attribute writes** — ``self.X = ...`` / ``self.X += ...`` /
  ``self.X[...] = ...`` with the held stack (the R009 shared-state
  check) and, separately, taint tokens for *any* terminal attribute
  assignment (the R010 field-taint seed).
- **nondeterminism sources** — wall-clock reads, unseeded RNG calls,
  ``os.environ`` reads, ``id()`` / builtin ``hash()``, unordered-set
  iteration.
- **taint summaries** — which base tokens (``nondet``, ``call:<f>``,
  ``attr:<a>``) reach the function's returns, attribute writes, keyword
  constructor arguments and string-keyed dict literals, after a
  local-variable fixpoint.

The extraction is a syntactic over/under-approximation by design: it
resolves nothing (phase 2 owns resolution) and it tracks no aliasing.
The limits are documented in ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = [
    "LockEvent",
    "CallSite",
    "AttrWrite",
    "NondetUse",
    "KwTaint",
    "DictKeyTaint",
    "FunctionFacts",
    "ClassFacts",
    "Suppression",
    "FileFacts",
    "extract_facts",
    "facts_to_dict",
    "facts_from_dict",
]

#: Wall-clock reads on the ``time`` module (value-returning).
CLOCK_CALLS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: ``random``-module calls that are *seeded constructors*, not sources.
SEEDED_CONSTRUCTORS = frozenset({"Random"})

#: ``threading`` / ``asyncio`` constructors that create a lock object.
LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


@dataclass(frozen=True)
class LockEvent:
    """One lock-shaped event: a with-item, ``.acquire()`` or ``.release()``.

    Attributes:
        kind: ``"with"`` | ``"acquire"`` | ``"release"``.
        target: Raw dotted receiver text (``"self._accounting_lock"``,
            ``"shard.lock"``, ``"shard.held()"``).
        line: 1-based source line.
        held: Raw region texts lexically held at this event, outermost
            first.
    """

    kind: str
    target: str
    line: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """One call expression with its lock context."""

    callee: str
    line: int
    held: tuple[str, ...]


@dataclass(frozen=True)
class AttrWrite:
    """One write to a ``self`` attribute (R009's unit of analysis).

    ``attr`` is the terminal attribute name; ``via_subscript`` marks
    item assignment through the attribute (``self.xs[i] = v``) rather
    than rebinding the attribute itself.
    """

    attr: str
    line: int
    held: tuple[str, ...]
    augmented: bool
    via_subscript: bool


@dataclass(frozen=True)
class NondetUse:
    """One use of a nondeterminism source.

    ``kind`` is one of ``"clock"``, ``"rng"``, ``"environ"``, ``"id"``,
    ``"hash"``, ``"set-iter"``; ``detail`` names the concrete source
    (``"time.perf_counter"``, ``"random.random"``, ``"set iteration"``).
    """

    kind: str
    detail: str
    line: int


@dataclass(frozen=True)
class KwTaint:
    """Taint tokens flowing into one keyword argument of a call.

    The R010 field-taint seed for frozen dataclasses built by keyword
    (``ServeReport(wall_seconds=wall)``).
    """

    callee: str
    keyword: str
    tokens: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class DictKeyTaint:
    """Taint tokens flowing into one string-keyed dict-literal value."""

    key: str
    tokens: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class FunctionFacts:
    """Everything phase 2 needs to know about one function."""

    name: str
    qualname: str
    cls: str | None
    line: int
    decorators: tuple[str, ...]
    lock_events: tuple[LockEvent, ...]
    calls: tuple[CallSite, ...]
    attr_writes: tuple[AttrWrite, ...]
    attr_reads: tuple[tuple[str, int], ...]
    nondet: tuple[NondetUse, ...]
    return_tokens: tuple[str, ...]
    attr_taints: tuple[tuple[str, tuple[str, ...]], ...]
    kw_taints: tuple[KwTaint, ...]
    dict_taints: tuple[DictKeyTaint, ...]


@dataclass(frozen=True)
class ClassFacts:
    """One class definition: its methods and the lock objects it owns.

    ``lock_attrs`` maps attribute name to the constructor kind
    (``"Lock"``, ``"RLock"``, ``"Condition"``, …) for every
    ``self.X = threading.Lock()``-shaped assignment anywhere in the
    class body.
    """

    name: str
    line: int
    bases: tuple[str, ...]
    methods: tuple[str, ...]
    lock_attrs: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class Suppression:
    """One ``# reprolint: ignore[...]`` comment.

    Attributes:
        line: 1-based source line the comment sits on.
        codes: The rule codes it names.
        reason: The trailing free-text reason (stripped; empty when the
            waiver is bare — which R000 flags).
    """

    line: int
    codes: tuple[str, ...]
    reason: str


@dataclass(frozen=True)
class FileFacts:
    """Phase-1 output for one file: plain data, JSON-round-trippable."""

    path: str
    module: str | None
    imports: tuple[tuple[str, int], ...]
    classes: tuple[ClassFacts, ...]
    functions: tuple[FunctionFacts, ...]
    suppressions: tuple[Suppression, ...] = field(default=())


# ----------------------------------------------------------------------
# Expression rendering and taint-token collection
# ----------------------------------------------------------------------
def expr_text(node: ast.expr) -> str:
    """Best-effort dotted rendering of a receiver expression.

    ``self._accounting_lock`` -> ``"self._accounting_lock"``;
    ``shard.held()`` -> ``"shard.held()"``; anything unrenderable
    collapses to ``"?"`` segments rather than failing.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{expr_text(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{expr_text(node.func)}()"
    if isinstance(node, ast.Subscript):
        return f"{expr_text(node.value)}[]"
    return "?"


def _call_detail(node: ast.Call) -> tuple[str, str] | None:
    """Classify one call as a nondeterminism source, if it is one.

    Returns ``(kind, detail)`` or None.  Seeded constructions —
    ``random.Random(seed)``, ``np.random.default_rng(seed)`` — are
    excluded; the *global* process-wide RNGs and the wall clock are not.
    """
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "id":
            return "id", "id()"
        if func.id == "hash":
            return "hash", "hash()"
        if func.id == "getenv":
            return "environ", "getenv()"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = expr_text(func.value)
    name = func.attr
    if receiver == "time" and name in CLOCK_CALLS:
        return "clock", f"time.{name}"
    if receiver == "datetime.datetime" and name in ("now", "utcnow", "today"):
        return "clock", f"datetime.{name}"
    if receiver == "random" and name not in SEEDED_CONSTRUCTORS:
        return "rng", f"random.{name}"
    if receiver in ("np.random", "numpy.random"):
        if name == "default_rng" and not node.args and not node.keywords:
            return "rng", f"{receiver}.default_rng (unseeded)"
        if name != "default_rng":
            return "rng", f"{receiver}.{name}"
        return None
    if receiver == "os" and name in ("getenv", "urandom"):
        return "environ" if name == "getenv" else "rng", f"os.{name}"
    if receiver == "os.environ" and name in ("get", "items", "keys"):
        return "environ", f"os.environ.{name}"
    if receiver == "uuid" and name in ("uuid1", "uuid4"):
        return "rng", f"uuid.{name}"
    if receiver == "secrets":
        return "rng", f"secrets.{name}"
    return None


def _environ_read(node: ast.expr) -> bool:
    """Whether ``node`` reads ``os.environ`` directly (subscript/attr)."""
    if isinstance(node, ast.Subscript):
        return expr_text(node.value) == "os.environ"
    return False


def _is_name_chain(node: ast.expr) -> bool:
    """``self``, ``report``, ``self.trace.stage`` — no calls inside."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name)


#: Cap on ``arg:`` wrapper nesting.  Deeper chains collapse to the bare
#: inner token — strictly more conservative (the barrier check below can
#: only *clear* taint, so dropping wrappers never hides a flow).
_MAX_ARG_DEPTH = 3


def split_arg_token(token: str) -> tuple[tuple[str, ...], str]:
    """``"arg:f:arg:g:attr:x"`` → ``(("f", "g"), "attr:x")``.

    Argument-derived tokens record which callees the value passed
    through so the taint rule can treat audited digest functions as
    barriers.  Callee texts come from :func:`expr_text` and never
    contain ``:``.
    """
    callees: list[str] = []
    while token.startswith("arg:"):
        callee, _, token = token[len("arg:") :].partition(":")
        callees.append(callee)
    return tuple(callees), token


def _wrap_arg(callees: tuple[str, ...], token: str) -> str:
    inner_depth = len(split_arg_token(token)[0])
    for callee in reversed(callees[: max(0, _MAX_ARG_DEPTH - inner_depth)]):
        token = f"arg:{callee}:{token}"
    return token


class _TokenCollector(ast.NodeVisitor):
    """Collect base taint tokens from one expression.

    Tokens: ``"nondet"`` (a direct source call in the expression),
    ``"call:<callee>"``, ``"attr:<name>"``, ``"local:<name>"`` (the
    last substituted away by the per-function fixpoint) and
    ``"arg:<callee>:<token>"`` for values passed *into* a call — the
    wrapper lets the taint rule stop argument flows at audited
    digest-function barriers.

    Attribute access on a plain name chain is a **field projection**:
    ``report.queries`` yields only ``attr:queries``, not the taint of
    ``report`` itself.  Field-level tracking is what lets one wall-clock
    field inside a report object stay quarantined instead of smearing
    its taint over every sibling field read from the same object.
    """

    def __init__(self, skip_str_dict_values: bool = False) -> None:
        self.tokens: set[str] = set()
        self._skip_str_dict_values = skip_str_dict_values

    def visit_Call(self, node: ast.Call) -> None:
        detail = _call_detail(node)
        if detail is not None:
            self.tokens.add("nondet")
            self.generic_visit(node)
            return
        callee = expr_text(node.func)
        self.tokens.add(f"call:{callee}")
        if not _is_name_chain(node.func):
            self.visit(node.func)
        # Argument taint flows through the call, but tagged with the
        # callee so digest functions (audited internally as sinks) can
        # act as barriers at their call sites.
        args: list[ast.expr] = list(node.args)
        args.extend(kw.value for kw in node.keywords)
        for arg in args:
            sub = _TokenCollector(self._skip_str_dict_values)
            sub.visit(arg)
            for token in sub.tokens:
                self.tokens.add(_wrap_arg((callee,), token))

    def visit_Dict(self, node: ast.Dict) -> None:
        if not self._skip_str_dict_values:
            self.generic_visit(node)
            return
        # Nested string-keyed dict literals are audited per key by their
        # own DictKeyTaint records; re-aggregating their values here
        # would let one whitelisted wall_* entry taint the whole
        # enclosing payload.
        for key, value in zip(node.keys, node.values):
            if (
                key is not None
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            ):
                continue
            if key is not None:
                self.visit(key)
            self.visit(value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.tokens.add(f"attr:{node.attr}")
        if not _is_name_chain(node.value):
            self.visit(node.value)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _environ_read(node):
            self.tokens.add("nondet")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.tokens.add(f"local:{node.id}")


def _expr_tokens(
    node: ast.expr, skip_str_dict_values: bool = False
) -> frozenset[str]:
    collector = _TokenCollector(skip_str_dict_values)
    collector.visit(node)
    return frozenset(collector.tokens)


# ----------------------------------------------------------------------
# Per-function extraction
# ----------------------------------------------------------------------
class _FunctionVisitor:
    """Walks one function body in statement order, tracking lock regions.

    Statement-order traversal is what makes explicit
    ``lock.acquire()`` / ``lock.release()`` bracketing meaningful: an
    acquire adds its receiver to the held stack for the statements that
    follow it (in the traversal order body → handlers → orelse →
    finalbody), a release removes it.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None) -> None:
        self.func = func
        self.cls = cls
        self.with_stack: list[str] = []
        self.explicit: list[str] = []
        self.lock_events: list[LockEvent] = []
        self.calls: list[CallSite] = []
        self.attr_writes: list[AttrWrite] = []
        self.attr_reads: list[tuple[str, int]] = []
        self.nondet: list[NondetUse] = []
        self.return_exprs: list[ast.expr] = []
        self.assigns: list[tuple[str, frozenset[str]]] = []
        self.attr_assigns: list[tuple[str, frozenset[str]]] = []
        self.kw_taints: list[KwTaint] = []
        self.dict_taints: list[DictKeyTaint] = []
        self.set_locals: set[str] = set()

    # -- helpers --------------------------------------------------------
    def _held(self) -> tuple[str, ...]:
        return tuple(self.with_stack + self.explicit)

    def _note_expr(self, node: ast.expr) -> None:
        """Record calls, reads and sources inside one expression."""
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                callee = expr_text(sub.func)
                self.calls.append(
                    CallSite(callee=callee, line=sub.lineno, held=self._held())
                )
                detail = _call_detail(sub)
                if detail is not None:
                    self.nondet.append(
                        NondetUse(kind=detail[0], detail=detail[1], line=sub.lineno)
                    )
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "acquire"
                ):
                    self.lock_events.append(
                        LockEvent(
                            kind="acquire",
                            target=expr_text(sub.func.value),
                            line=sub.lineno,
                            held=self._held(),
                        )
                    )
                    self.explicit.append(expr_text(sub.func.value))
                elif (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                ):
                    target = expr_text(sub.func.value)
                    self.lock_events.append(
                        LockEvent(
                            kind="release",
                            target=target,
                            line=sub.lineno,
                            held=self._held(),
                        )
                    )
                    if target in self.explicit:
                        self.explicit.remove(target)
                for kw in sub.keywords:
                    if kw.arg is not None:
                        self.kw_taints.append(
                            KwTaint(
                                callee=callee,
                                keyword=kw.arg,
                                tokens=tuple(sorted(_expr_tokens(kw.value))),
                                line=sub.lineno,
                            )
                        )
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                self.attr_reads.append((sub.attr, sub.lineno))
            elif isinstance(sub, ast.Subscript) and _environ_read(sub):
                self.nondet.append(
                    NondetUse(kind="environ", detail="os.environ[...]", line=sub.lineno)
                )
            elif isinstance(sub, ast.Dict):
                for key, value in zip(sub.keys, sub.values):
                    if (
                        key is not None
                        and isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                    ):
                        self.dict_taints.append(
                            DictKeyTaint(
                                key=key.value,
                                tokens=tuple(
                                    sorted(
                                        _expr_tokens(
                                            value, skip_str_dict_values=True
                                        )
                                    )
                                ),
                                line=key.lineno,
                            )
                        )

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in self.set_locals
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _note_iteration(self, iter_expr: ast.expr, line: int) -> None:
        if self._is_set_expr(iter_expr):
            self.nondet.append(
                NondetUse(kind="set-iter", detail="set iteration", line=line)
            )

    def _note_target(self, target: ast.expr, tokens: frozenset[str], augmented: bool) -> None:
        if isinstance(target, ast.Name):
            self.assigns.append((target.id, tokens))
        elif isinstance(target, ast.Attribute):
            self.attr_assigns.append((target.attr, tokens))
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self.attr_writes.append(
                    AttrWrite(
                        attr=target.attr,
                        line=target.lineno,
                        held=self._held(),
                        augmented=augmented,
                        via_subscript=False,
                    )
                )
        elif isinstance(target, ast.Subscript):
            inner = target.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                self.attr_writes.append(
                    AttrWrite(
                        attr=inner.attr,
                        line=target.lineno,
                        held=self._held(),
                        augmented=augmented,
                        via_subscript=True,
                    )
                )
                self.attr_assigns.append((inner.attr, tokens))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._note_target(element, tokens, augmented)

    # -- statement traversal -------------------------------------------
    def run(self) -> None:
        for stmt in self.func.body:
            self._visit_stmt(stmt)

    def _visit_block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs analyzed separately
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                target = expr_text(item.context_expr)
                self.lock_events.append(
                    LockEvent(
                        kind="with",
                        target=target,
                        line=stmt.lineno,
                        held=self._held(),
                    )
                )
                self._note_expr(item.context_expr)
                self.with_stack.append(target)
                pushed += 1
            self._visit_block(stmt.body)
            del self.with_stack[-pushed:]
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._note_iteration(stmt.iter, stmt.lineno)
            self._note_expr(stmt.iter)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._note_expr(stmt.test)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._note_expr(stmt.test)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._visit_block(stmt.body)
            for handler in stmt.handlers:
                self._visit_block(handler.body)
            self._visit_block(stmt.orelse)
            self._visit_block(stmt.finalbody)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_exprs.append(stmt.value)
                self._note_expr(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            tokens = _expr_tokens(stmt.value)
            self._note_expr(stmt.value)
            for target in stmt.targets:
                self._note_target(target, tokens, augmented=False)
                if isinstance(target, ast.Name) and self._is_set_expr(stmt.value):
                    self.set_locals.add(target.id)
            for target in stmt.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.expr) and not isinstance(
                        sub, (ast.Name, ast.Attribute, ast.Tuple, ast.List, ast.Starred)
                    ):
                        self._note_expr(sub)
            return
        if isinstance(stmt, ast.AugAssign):
            tokens = _expr_tokens(stmt.value)
            self._note_expr(stmt.value)
            self._note_target(stmt.target, tokens, augmented=True)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                tokens = _expr_tokens(stmt.value)
                self._note_expr(stmt.value)
                self._note_target(stmt.target, tokens, augmented=False)
            return
        if isinstance(stmt, ast.Expr):
            self._note_expr(stmt.value)
            # Comprehensions iterate too: flag set-typed generators.
            for sub in ast.walk(stmt.value):
                if isinstance(sub, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                    for gen in sub.generators:
                        self._note_iteration(gen.iter, sub.lineno)
            return
        if isinstance(stmt, (ast.Assert, ast.Raise, ast.Delete)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._note_expr(value)
            return
        # Remaining compound/simple statements: record expressions inside.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._note_expr(child)
            elif isinstance(child, ast.stmt):
                self._visit_stmt(child)

    # -- summary --------------------------------------------------------
    def _resolve_tokens(self) -> dict[str, frozenset[str]]:
        """Per-local base-token closure (substitute ``local:`` away)."""
        local_tokens: dict[str, set[str]] = {}
        for name, tokens in self.assigns:
            local_tokens.setdefault(name, set()).update(tokens)
        changed = True
        iterations = 0
        while changed and iterations < 32:
            changed = False
            iterations += 1
            for name, tokens in local_tokens.items():
                extra: set[str] = set()
                for token in list(tokens):
                    callees, base = split_arg_token(token)
                    if base.startswith("local:"):
                        ref = base[len("local:") :]
                        for sub in local_tokens.get(ref, set()):
                            extra.add(_wrap_arg(callees, sub))
                before = len(tokens)
                tokens.update(extra)
                if len(tokens) != before:
                    changed = True
        return {
            name: frozenset(
                t
                for t in tokens
                if not split_arg_token(t)[1].startswith("local:")
            )
            for name, tokens in local_tokens.items()
        }

    def _substitute(
        self, tokens: frozenset[str], resolved: dict[str, frozenset[str]]
    ) -> tuple[str, ...]:
        out: set[str] = set()
        for token in tokens:
            callees, base = split_arg_token(token)
            if base.startswith("local:"):
                for sub in resolved.get(base[len("local:") :], frozenset()):
                    out.add(_wrap_arg(callees, sub))
            else:
                out.add(token)
        return tuple(sorted(out))

    def summarize(self) -> FunctionFacts:
        resolved = self._resolve_tokens()
        return_tokens: set[str] = set()
        for expr in self.return_exprs:
            return_tokens.update(self._substitute(_expr_tokens(expr), resolved))
        attr_taints: dict[str, set[str]] = {}
        for attr, tokens in self.attr_assigns:
            attr_taints.setdefault(attr, set()).update(
                self._substitute(tokens, resolved)
            )
        decorators = tuple(
            expr_text(dec) for dec in self.func.decorator_list
        )
        qualname = (
            f"{self.cls}.{self.func.name}" if self.cls else self.func.name
        )
        return FunctionFacts(
            name=self.func.name,
            qualname=qualname,
            cls=self.cls,
            line=self.func.lineno,
            decorators=decorators,
            lock_events=tuple(self.lock_events),
            calls=tuple(self.calls),
            attr_writes=tuple(self.attr_writes),
            attr_reads=tuple(self.attr_reads),
            nondet=tuple(self.nondet),
            return_tokens=tuple(sorted(return_tokens)),
            attr_taints=tuple(
                sorted(
                    (attr, tuple(sorted(tokens)))
                    for attr, tokens in attr_taints.items()
                )
            ),
            kw_taints=tuple(
                KwTaint(
                    callee=kw.callee,
                    keyword=kw.keyword,
                    tokens=self._substitute(frozenset(kw.tokens), resolved),
                    line=kw.line,
                )
                for kw in self.kw_taints
            ),
            dict_taints=tuple(
                DictKeyTaint(
                    key=dk.key,
                    tokens=self._substitute(frozenset(dk.tokens), resolved),
                    line=dk.line,
                )
                for dk in self.dict_taints
            ),
        )


# ----------------------------------------------------------------------
# Per-file extraction
# ----------------------------------------------------------------------
def _lock_attr_kind(node: ast.expr) -> str | None:
    """``threading.Lock()`` / ``asyncio.Condition()`` -> its kind."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in LOCK_CONSTRUCTORS:
        receiver = expr_text(func.value)
        if receiver in ("threading", "asyncio", "multiprocessing"):
            return func.attr
    return None


def _extract_class(node: ast.ClassDef) -> tuple[ClassFacts, list[FunctionFacts]]:
    methods: list[str] = []
    lock_attrs: dict[str, str] = {}
    functions: list[FunctionFacts] = []
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            methods.append(stmt.name)
            visitor = _FunctionVisitor(stmt, node.name)
            visitor.run()
            functions.append(visitor.summarize())
            for body_stmt in ast.walk(stmt):
                if isinstance(body_stmt, ast.Assign):
                    kind = _lock_attr_kind(body_stmt.value)
                    if kind is None:
                        continue
                    for target in body_stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            lock_attrs[target.attr] = kind
    facts = ClassFacts(
        name=node.name,
        line=node.lineno,
        bases=tuple(expr_text(base) for base in node.bases),
        methods=tuple(methods),
        lock_attrs=tuple(sorted(lock_attrs.items())),
    )
    return facts, functions


def extract_facts(
    path: str,
    module: str | None,
    tree: ast.Module,
    suppressions: Sequence[Suppression] = (),
) -> FileFacts:
    """Extract one file's facts from its parsed AST."""
    imports: list[tuple[str, int]] = []
    classes: list[ClassFacts] = []
    functions: list[FunctionFacts] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.append((alias.name, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0:
                imports.append((node.module, node.lineno))
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            cls_facts, cls_functions = _extract_class(node)
            classes.append(cls_facts)
            functions.extend(cls_functions)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visitor = _FunctionVisitor(node, None)
            visitor.run()
            functions.append(visitor.summarize())
            # Nested defs (decorator wrappers): analyze one level down so
            # patterns like _synchronized's wrapper() are visible.
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested = _FunctionVisitor(stmt, None)
                    nested.run()
                    inner = nested.summarize()
                    functions.append(
                        FunctionFacts(
                            name=inner.name,
                            qualname=f"{node.name}.{inner.name}",
                            cls=None,
                            line=inner.line,
                            decorators=inner.decorators,
                            lock_events=inner.lock_events,
                            calls=inner.calls,
                            attr_writes=inner.attr_writes,
                            attr_reads=inner.attr_reads,
                            nondet=inner.nondet,
                            return_tokens=inner.return_tokens,
                            attr_taints=inner.attr_taints,
                            kw_taints=inner.kw_taints,
                            dict_taints=inner.dict_taints,
                        )
                    )
    return FileFacts(
        path=path,
        module=module,
        imports=tuple(imports),
        classes=tuple(classes),
        functions=tuple(functions),
        suppressions=tuple(suppressions),
    )


# ----------------------------------------------------------------------
# JSON round-trip (for the content-hash cache)
# ----------------------------------------------------------------------
def facts_to_dict(facts: FileFacts) -> dict[str, Any]:
    """Serialize to plain JSON types (tuples become lists)."""

    def _dc(obj: Any) -> Any:
        if isinstance(obj, tuple):
            return [_dc(item) for item in obj]
        if hasattr(obj, "__dataclass_fields__"):
            return {
                name: _dc(getattr(obj, name))
                for name in obj.__dataclass_fields__
            }
        return obj

    out = _dc(facts)
    assert isinstance(out, dict)
    return out


def _tup(items: Any) -> tuple[Any, ...]:
    return tuple(items)


def facts_from_dict(data: dict[str, Any]) -> FileFacts:
    """Rebuild :class:`FileFacts` from :func:`facts_to_dict` output."""

    def _pairs(items: Any) -> tuple[tuple[str, Any], ...]:
        return tuple((a, tuple(b) if isinstance(b, list) else b) for a, b in items)

    functions = tuple(
        FunctionFacts(
            name=f["name"],
            qualname=f["qualname"],
            cls=f["cls"],
            line=f["line"],
            decorators=_tup(f["decorators"]),
            lock_events=tuple(
                LockEvent(e["kind"], e["target"], e["line"], _tup(e["held"]))
                for e in f["lock_events"]
            ),
            calls=tuple(
                CallSite(c["callee"], c["line"], _tup(c["held"]))
                for c in f["calls"]
            ),
            attr_writes=tuple(
                AttrWrite(
                    w["attr"], w["line"], _tup(w["held"]),
                    w["augmented"], w["via_subscript"],
                )
                for w in f["attr_writes"]
            ),
            attr_reads=tuple((a, b) for a, b in f["attr_reads"]),
            nondet=tuple(
                NondetUse(n["kind"], n["detail"], n["line"]) for n in f["nondet"]
            ),
            return_tokens=_tup(f["return_tokens"]),
            attr_taints=tuple(
                (attr, _tup(tokens)) for attr, tokens in f["attr_taints"]
            ),
            kw_taints=tuple(
                KwTaint(k["callee"], k["keyword"], _tup(k["tokens"]), k["line"])
                for k in f["kw_taints"]
            ),
            dict_taints=tuple(
                DictKeyTaint(d["key"], _tup(d["tokens"]), d["line"])
                for d in f["dict_taints"]
            ),
        )
        for f in data["functions"]
    )
    classes = tuple(
        ClassFacts(
            name=c["name"],
            line=c["line"],
            bases=_tup(c["bases"]),
            methods=_tup(c["methods"]),
            lock_attrs=_pairs(c["lock_attrs"]),
        )
        for c in data["classes"]
    )
    return FileFacts(
        path=data["path"],
        module=data["module"],
        imports=tuple((m, l) for m, l in data["imports"]),
        classes=classes,
        functions=functions,
        suppressions=tuple(
            Suppression(s["line"], _tup(s["codes"]), s["reason"])
            for s in data["suppressions"]
        ),
    )
