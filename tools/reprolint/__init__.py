"""reprolint — project-specific static analysis for the repro codebase.

Run it with::

    python -m tools.reprolint src tests

See ``docs/STATIC_ANALYSIS.md`` for every rule with bad/good examples.
"""

from __future__ import annotations

from tools.reprolint.engine import (
    FileContext,
    Violation,
    lint_paths,
    lint_source,
)
from tools.reprolint.rules import ALL_RULES, RULES_BY_CODE

__all__ = [
    "FileContext",
    "Violation",
    "lint_paths",
    "lint_source",
    "ALL_RULES",
    "RULES_BY_CODE",
]
