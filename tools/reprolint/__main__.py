"""CLI: ``python -m tools.reprolint [--list-rules] [paths...]``."""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from tools.reprolint.engine import lint_paths
from tools.reprolint.rules import ALL_RULES, RULES_BY_CODE


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.CODE}  {rule.SUMMARY}")
        return 0

    rules = ALL_RULES
    if args.select:
        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        unknown = [c for c in codes if c not in RULES_BY_CODE]
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(unknown)}")
        rules = tuple(RULES_BY_CODE[c] for c in codes)

    parse_errors = 0

    def on_error(path: str, exc: SyntaxError) -> None:
        nonlocal parse_errors
        parse_errors += 1
        print(f"{path}: syntax error: {exc}", file=sys.stderr)

    violations = lint_paths(args.paths, rules=rules, on_error=on_error)
    for violation in violations:
        print(violation.render())
    if violations or parse_errors:
        print(
            f"reprolint: {len(violations)} violation(s), "
            f"{parse_errors} unparsable file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
