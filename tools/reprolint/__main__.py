"""CLI: ``python -m tools.reprolint [options] [paths...]``.

Runs the two-phase analyzer (per-file rules from the content-hash
cache, whole-program rules recomputed) and reports in one of three
formats:

- ``text`` (default) — ``path:line:col: CODE message`` lines;
- ``json`` — a machine-readable object with violations and stats;
- ``github`` — GitHub Actions workflow commands, rendered as inline
  annotations on the PR diff.

``--dump-lockorder`` prints the statically derived lock-order graph
(one ``outer -> inner`` line per edge) — the same lines pinned in
``tests/tools/lockorder.txt``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from tools.reprolint.cache import DEFAULT_CACHE_PATH
from tools.reprolint.engine import run_lint
from tools.reprolint.project import Project
from tools.reprolint.rules import ALL_RULES, RULES_BY_CODE, r009_lockorder


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Project-specific static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule code with its summary and exit",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="violation output format (default: text)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the fact cache (cold run)",
    )
    parser.add_argument(
        "--cache-file", default=DEFAULT_CACHE_PATH, metavar="PATH",
        help=f"fact cache location (default: {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker threads for fact extraction (default: auto)",
    )
    parser.add_argument(
        "--dump-lockorder", action="store_true",
        help="print the derived static lock-order graph and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.CODE}  {rule.SUMMARY}")
        return 0

    rules = ALL_RULES
    if args.select:
        codes = [c.strip().upper() for c in args.select.split(",") if c.strip()]
        unknown = [c for c in codes if c not in RULES_BY_CODE]
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(unknown)}")
        rules = tuple(RULES_BY_CODE[c] for c in codes)

    cache_path = None if args.no_cache else args.cache_file
    result = run_lint(
        args.paths, rules=rules, cache_path=cache_path, jobs=args.jobs
    )

    if args.dump_lockorder:
        graph = r009_lockorder.derive_lock_graph(Project(result.files))
        for line in graph.edge_lines():
            print(line)
        return 0

    if args.format == "json":
        payload = {
            "violations": [
                {
                    "path": v.path,
                    "line": v.line,
                    "col": v.col,
                    "code": v.code,
                    "message": v.message,
                }
                for v in result.violations
            ],
            "parse_errors": [
                {"path": path, "message": str(exc)}
                for path, exc in result.parse_errors
            ],
            "files": len(result.files),
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "github":
        for v in result.violations:
            # Workflow command; GitHub renders it as a file annotation.
            message = v.message.replace("%", "%25").replace("\n", "%0A")
            print(
                f"::error file={v.path},line={v.line},col={v.col},"
                f"title=reprolint {v.code}::{message}"
            )
        for path, exc in result.parse_errors:
            print(f"::error file={path},title=reprolint parse::{exc}")
    else:
        for v in result.violations:
            print(v.render())
        for path, exc in result.parse_errors:
            print(f"{path}: syntax error: {exc}", file=sys.stderr)

    if result.violations or result.parse_errors:
        print(
            f"reprolint: {len(result.violations)} violation(s), "
            f"{len(result.parse_errors)} unparsable file(s)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
