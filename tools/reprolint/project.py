"""The whole-program analysis context handed to phase-2 rules.

A :class:`Project` bundles every linted file's facts with the shared
symbol table and call graph (built lazily, once per run).  Phase-2 rule
modules expose ``check_project(project)`` instead of the per-file
``check(ctx)`` — the engine dispatches on which attribute a rule module
defines.

Suppression works the same as for per-file rules, but is answered from
the *facts* (phase 1 records every ``# reprolint: ignore[...]`` comment
with its line, codes and reason) so phase 2 never re-reads source.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Sequence

from tools.reprolint.callgraph import CallGraph, SymbolTable
from tools.reprolint.engine import Violation
from tools.reprolint.facts import FileFacts


class Project:
    """Every linted file's facts plus the shared phase-2 structures."""

    def __init__(self, files: Sequence[FileFacts]) -> None:
        self.files: tuple[FileFacts, ...] = tuple(
            sorted(files, key=lambda f: f.path)
        )
        self.by_path: dict[str, FileFacts] = {f.path: f for f in self.files}
        self._symbols: SymbolTable | None = None
        self._callgraph: CallGraph | None = None
        self._repro_only: Project | None = None

    def repro_only(self) -> Project:
        """The sub-project of ``src/repro`` files (whole-program scope).

        Phase-2 rules analyze library modules only: test files and tool
        files have no importable module path, and synthetic lock/taint
        patterns in *tests of the linter itself* must not leak into the
        production lock-order graph.
        """
        if self._repro_only is None:
            if all(
                f.module is not None and f.module.split(".")[0] == "repro"
                for f in self.files
            ):
                self._repro_only = self
            else:
                self._repro_only = Project(
                    [
                        f
                        for f in self.files
                        if f.module is not None
                        and f.module.split(".")[0] == "repro"
                    ]
                )
        return self._repro_only

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            self._symbols = SymbolTable(self.files)
        return self._symbols

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.symbols)
        return self._callgraph

    def module_of(self, path: str) -> str | None:
        facts = self.by_path.get(path)
        return None if facts is None else facts.module

    def in_package(self, path: str, *packages: str) -> bool:
        """Whether ``path``'s module is (inside) one of ``packages``."""
        module = self.module_of(path)
        if module is None:
            return False
        return any(
            module == pkg or module.startswith(pkg + ".") for pkg in packages
        )

    def suppressed(self, path: str, line: int, code: str) -> bool:
        """Whether ``code`` is waived on ``line`` of ``path``."""
        facts = self.by_path.get(path)
        if facts is None:
            return False
        for suppression in facts.suppressions:
            if suppression.line == line and code in suppression.codes:
                return True
        return False


class ProjectRule(Protocol):
    """The module-level protocol phase-2 rule files satisfy."""

    CODE: str
    SUMMARY: str

    @staticmethod
    def check_project(project: Project) -> Iterator[Violation]: ...
