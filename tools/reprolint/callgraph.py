"""Phase 2 scaffolding: project symbol table and call graph.

Consumes the per-file :class:`~tools.reprolint.facts.FileFacts` of every
linted file and builds the two structures the whole-program rules share:

- :class:`SymbolTable` — every class and function in the project,
  indexed so a raw callee text from phase 1 (``"self._publish_delta"``,
  ``"shard.held"``, ``"record_blocked_wait"``) can be resolved to the
  candidate definitions it may denote;
- :class:`CallGraph` — resolved caller → callee edges, the substrate
  for transitive lock acquisition (R009) and taint propagation (R010).

Resolution is deliberately *name-based and optimistic about precision*:

- ``self.m`` resolves to the enclosing class's ``m`` when it defines
  one, else to every project class defining ``m`` (inheritance);
- ``obj.m`` / ``a.b.m`` resolve to every project class defining ``m``;
- a bare ``f`` resolves to the same file's module-level ``f`` when it
  exists, else to every module-level ``f`` in the project.

Unresolvable callees (stdlib, numpy, builtins) resolve to nothing —
phase-2 rules treat them as lock-free and taint-free, and compensate
with explicit source/sink checks.  The trade-offs are documented in
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from tools.reprolint.facts import ClassFacts, FileFacts, FunctionFacts

__all__ = [
    "FuncRef",
    "SymbolTable",
    "CallGraph",
    "AMBIGUOUS_METHOD_NAMES",
    "HOOK_BINDINGS",
]

#: Method names shared with stdlib containers/locks/futures.  A
#: non-``self`` call to one of these (``self._memo.get(k)``) is far more
#: likely a ``dict``/``list``/``Lock`` operation than a project method,
#: and resolving it to every project class defining the name fabricates
#: call edges (and through them lock edges and taint) out of thin air.
#: ``self.m`` calls still resolve — the enclosing class is known.
AMBIGUOUS_METHOD_NAMES = frozenset(
    {
        "get", "put", "pop", "add", "append", "extend", "insert", "remove",
        "discard", "clear", "copy", "update", "setdefault", "items", "keys",
        "values", "index", "count", "sort", "reverse", "join", "split",
        "strip", "startswith", "endswith", "format", "encode", "decode",
        "read", "write", "readline", "flush", "seek", "tell",
        "acquire", "release", "locked", "wait", "wait_for", "notify",
        "notify_all", "set", "is_set", "submit", "map", "shutdown",
        "result", "done", "cancel", "exception", "cancelled",
        "qsize", "empty", "full", "get_nowait", "put_nowait",
        "send", "recv", "poll", "close", "terminate", "kill", "is_alive",
        "getvalue", "total_seconds", "timestamp",
        # Shared with *every* class: a dotted ``super().__init__(...)``
        # chain would otherwise resolve to each project constructor,
        # fabricating lock edges out of any ``raise`` under a lock once
        # any constructor (transitively) acquires one.  Direct
        # instantiation (``ChunkLog(...)``) is unaffected — bare names
        # route through the class table, not this fallback.
        "__init__",
    }
)

#: Exact callee texts bound to known methods, checked *before* any
#: name-based resolution.  Two indirections need this:
#:
#: - ``self.evict_hook(...)`` is a stored callable, so name resolution
#:   sees nothing — but the only installer is the tiered cache, whose
#:   spill path acquires the ``tiered`` and ``l2`` locks (the whole
#:   point of deriving the shard → tiered → l2 order);
#: - ``self.log.<m>`` in the tiered cache denotes its owned
#:   :class:`~repro.storage.l2.L2Backend`, but several of the method
#:   names (``put``, ``get``, ``clear``, ``close``) are in
#:   :data:`AMBIGUOUS_METHOD_NAMES` (resolve to nothing) or collide
#:   with the sharded store's methods (resolve to a *false*
#:   ``tiered -> shard`` edge, i.e. a fabricated cycle).
#:
#: Each text maps to *every* implementation it may denote at runtime —
#: for ``self.log`` that is both L2 backends (:class:`ChunkLog` and
#: :class:`SqliteBackend`), so the derived lock graph covers whichever
#: one the stack composes.  R009's DECLARED_EDGES covers the hops the
#: callgraph still cannot see (hook *installation* sites).
_L2_IMPLS = ("ChunkLog", "SqliteBackend")

HOOK_BINDINGS: Mapping[str, tuple[tuple[str, str], ...]] = {
    "self.evict_hook": (("TieredChunkCache", "_on_evict"),),
    **{
        f"self.log.{method}": tuple((cls, method) for cls in _L2_IMPLS)
        for method in (
            "put", "get", "peek", "delete", "drop", "clear",
            "scan_keys", "tokens", "counters", "compact", "close",
            "reopen", "benefit", "pages_for",
        )
    },
    # ChunkLog-specific aliases kept for older call sites.
    "self.log.append": (("ChunkLog", "append"),),
    "self.log.read": (("ChunkLog", "read"),),
    "self.log.entries": (("ChunkLog", "entries"),),
    # sqlite3 connection calls inside the SqliteBackend: the receiver
    # is a stdlib object, but ``execute`` collides with the query
    # pipeline's entry point — name resolution would thread the whole
    # engine lock graph under the ``l2`` lock.  Bind to nothing.
    "conn.execute": (),
    "self._conn.execute": (),
}


@dataclass(frozen=True, order=True)
class FuncRef:
    """Stable identity of one function: its file and qualified name."""

    path: str
    qualname: str


class SymbolTable:
    """Name indexes over every class and function in the linted set."""

    def __init__(self, files: Sequence[FileFacts]) -> None:
        self.files: tuple[FileFacts, ...] = tuple(files)
        self.functions: dict[FuncRef, FunctionFacts] = {}
        self.file_of: dict[FuncRef, FileFacts] = {}
        self.classes: dict[str, list[tuple[str, ClassFacts]]] = {}
        self._by_method: dict[str, list[FuncRef]] = {}
        self._by_class_method: dict[tuple[str, str], list[FuncRef]] = {}
        self._module_funcs: dict[str, list[FuncRef]] = {}
        for facts in self.files:
            for cls in facts.classes:
                self.classes.setdefault(cls.name, []).append((facts.path, cls))
            for func in facts.functions:
                ref = FuncRef(path=facts.path, qualname=func.qualname)
                self.functions[ref] = func
                self.file_of[ref] = facts
                if func.cls is not None:
                    self._by_method.setdefault(func.name, []).append(ref)
                    self._by_class_method.setdefault(
                        (func.cls, func.name), []
                    ).append(ref)
                else:
                    self._module_funcs.setdefault(func.name, []).append(ref)

    def iter_functions(self) -> Iterator[tuple[FuncRef, FunctionFacts]]:
        yield from self.functions.items()

    def class_lock_attrs(self) -> Mapping[tuple[str, str], str]:
        """``(class, attr) -> kind`` for every lock-object attribute."""
        out: dict[tuple[str, str], str] = {}
        for entries in self.classes.values():
            for _, cls in entries:
                for attr, kind in cls.lock_attrs:
                    out[(cls.name, attr)] = kind
        return out

    def resolve_call(
        self, callee: str, caller: FunctionFacts, caller_path: str
    ) -> tuple[FuncRef, ...]:
        """Candidate definitions a raw callee text may denote."""
        bound = HOOK_BINDINGS.get(callee)
        if bound is not None:
            refs: list[FuncRef] = []
            for pair in bound:
                refs.extend(self._by_class_method.get(pair, ()))
            return tuple(refs)
        terminal = callee.rsplit(".", 1)[-1]
        if not terminal.isidentifier():
            return ()
        if "." not in callee:
            # Bare name: same-file module function wins, else any.
            refs = self._module_funcs.get(terminal, [])
            local = [r for r in refs if r.path == caller_path]
            if local:
                return tuple(local)
            if refs:
                return tuple(refs)
            # Class instantiation: route to __init__ when defined.
            if terminal in self.classes:
                return tuple(self._by_class_method.get((terminal, "__init__"), ()))
            return ()
        if callee == f"self.{terminal}" and caller.cls is not None:
            own = self._by_class_method.get((caller.cls, terminal), [])
            local = [r for r in own if r.path == caller_path]
            if local:
                return tuple(local)
            if own:
                return tuple(own)
        if terminal in AMBIGUOUS_METHOD_NAMES:
            return ()
        return tuple(self._by_method.get(terminal, ()))


class CallGraph:
    """Resolved caller → callee edges over the symbol table."""

    def __init__(self, symbols: SymbolTable) -> None:
        self.symbols = symbols
        self.edges: dict[FuncRef, tuple[FuncRef, ...]] = {}
        for ref, func in symbols.iter_functions():
            seen: list[FuncRef] = []
            for call in func.calls:
                for target in symbols.resolve_call(call.callee, func, ref.path):
                    if target != ref and target not in seen:
                        seen.append(target)
            self.edges[ref] = tuple(seen)

    def callees(self, ref: FuncRef) -> tuple[FuncRef, ...]:
        return self.edges.get(ref, ())

    def transitive_closure(
        self, seeds: Iterable[FuncRef]
    ) -> frozenset[FuncRef]:
        """All functions reachable from ``seeds`` (seeds included)."""
        reached: set[FuncRef] = set()
        stack = list(seeds)
        while stack:
            ref = stack.pop()
            if ref in reached:
                continue
            reached.add(ref)
            stack.extend(self.callees(ref))
        return frozenset(reached)
