"""The reprolint engine: file discovery, rule dispatch, suppressions.

``reprolint`` is a project-specific static analyzer for the repro
codebase.  Generic linters cannot know that ``repro.chunks`` must never
import ``repro.core``, or that cost accounting must not compare floats
with ``==`` — these are *paper-level* invariants of this reproduction,
so they get their own AST-based rules (see :mod:`tools.reprolint.rules`).

A rule is a module exposing::

    CODE: str          # "R001"
    SUMMARY: str       # one-line description (also used in docs)
    def check(ctx: FileContext) -> Iterator[Violation]: ...

Rules scope themselves by the *module path* of the file under analysis
(``ctx.module``), so running the CLI over extra directories is harmless.

Suppression: a line containing ``# reprolint: ignore[R001]`` (one or
more comma-separated codes) silences those codes on that line; a
waiver should carry a trailing reason, e.g.::

    expected, _ = backend.answer(query, "scan")  # reprolint: ignore[R001] ground-truth oracle
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol, Sequence

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*ignore\[([A-Z0-9,\s]+)\]")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a location.

    Attributes:
        path: File the violation is in (as given to the engine).
        line: 1-based source line.
        col: 0-based column.
        code: Rule code (``"R001"`` … ``"R005"``).
        message: Human-readable description of the finding.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to analyze one file.

    Attributes:
        path: Path as given (used in reports).
        module: Dotted module path when the file lives under ``src/``
            (e.g. ``repro.core.metrics``); ``None`` for files outside an
            importable tree (tests, tools, scripts).
        tree: The parsed AST.
        source_lines: The file's source split into lines (for
            suppression matching).
    """

    path: str
    module: str | None
    tree: ast.Module
    source_lines: tuple[str, ...] = field(repr=False)

    def in_package(self, *packages: str) -> bool:
        """Whether the file's module is (inside) one of ``packages``."""
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed on 1-based source line ``line``."""
        if not 1 <= line <= len(self.source_lines):
            return False
        match = _SUPPRESS_RE.search(self.source_lines[line - 1])
        if match is None:
            return False
        codes = {c.strip() for c in match.group(1).split(",")}
        return code in codes


class Rule(Protocol):
    """The module-level protocol every rule file satisfies."""

    CODE: str
    SUMMARY: str

    @staticmethod
    def check(ctx: FileContext) -> Iterator[Violation]: ...


def module_path_of(path: Path, root: Path | None = None) -> str | None:
    """Dotted module path of a file under a ``src/`` tree, else None.

    ``src/repro/core/metrics.py`` -> ``repro.core.metrics``;
    ``src/repro/core/__init__.py`` -> ``repro.core``.
    """
    resolved = path if root is None else path.resolve()
    parts = list(resolved.parts)
    if "src" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("src")
    module_parts = parts[idx + 1 :]
    if not module_parts:
        return None
    last = module_parts[-1]
    if last.endswith(".py"):
        module_parts[-1] = last[: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    if not module_parts:
        return None
    return ".".join(module_parts)


def build_context(path: str, source: str) -> FileContext:
    """Parse one file into a :class:`FileContext` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    return FileContext(
        path=path,
        module=module_path_of(Path(path)),
        tree=tree,
        source_lines=tuple(source.splitlines()),
    )


def lint_source(
    source: str,
    path: str = "src/repro/_snippet.py",
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint a source string as if it lived at ``path`` (for tests)."""
    from tools.reprolint.rules import ALL_RULES

    ctx = build_context(path, source)
    active: Iterable[Rule] = rules if rules is not None else ALL_RULES
    found: list[Violation] = []
    for rule in active:
        for violation in rule.check(ctx):
            if not ctx.suppressed(violation.line, violation.code):
                found.append(violation)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """All ``*.py`` files under the given files/directories, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    on_error: Callable[[str, SyntaxError], None] | None = None,
) -> list[Violation]:
    """Lint every Python file under ``paths``; returns sorted violations.

    Files that fail to parse are reported through ``on_error`` (and
    otherwise skipped) — ``compileall`` in CI owns syntax checking.
    """
    found: list[Violation] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            found.extend(lint_source(source, str(path), rules))
        except SyntaxError as exc:
            if on_error is not None:
                on_error(str(path), exc)
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found
