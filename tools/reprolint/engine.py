"""The reprolint engine: file discovery, rule dispatch, suppressions.

``reprolint`` is a project-specific static analyzer for the repro
codebase.  Generic linters cannot know that ``repro.chunks`` must never
import ``repro.core``, or that cost accounting must not compare floats
with ``==`` — these are *paper-level* invariants of this reproduction,
so they get their own AST-based rules (see :mod:`tools.reprolint.rules`).

A rule is a module exposing::

    CODE: str          # "R001"
    SUMMARY: str       # one-line description (also used in docs)
    def check(ctx: FileContext) -> Iterator[Violation]: ...

Rules scope themselves by the *module path* of the file under analysis
(``ctx.module``), so running the CLI over extra directories is harmless.

Suppression: a line containing ``# reprolint: ignore[R001]`` (one or
more comma-separated codes) silences those codes on that line; a
waiver should carry a trailing reason, e.g.::

    expected, _ = backend.answer(query, "scan")  # reprolint: ignore[R001] ground-truth oracle
"""

from __future__ import annotations

import ast
import hashlib
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Protocol, Sequence

from tools.reprolint.facts import FileFacts, Suppression, extract_facts

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "LintResult",
    "lint_source",
    "lint_sources",
    "lint_paths",
    "run_lint",
    "iter_python_files",
    "extract_suppressions",
]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*ignore\[([A-Z0-9,\s]+)\](.*)$")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a location.

    Attributes:
        path: File the violation is in (as given to the engine).
        line: 1-based source line.
        col: 0-based column.
        code: Rule code (``"R001"`` … ``"R005"``).
        message: Human-readable description of the finding.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule needs to analyze one file.

    Attributes:
        path: Path as given (used in reports).
        module: Dotted module path when the file lives under ``src/``
            (e.g. ``repro.core.metrics``); ``None`` for files outside an
            importable tree (tests, tools, scripts).
        tree: The parsed AST.
        source_lines: The file's source split into lines (for
            suppression matching).
    """

    path: str
    module: str | None
    tree: ast.Module
    source_lines: tuple[str, ...] = field(repr=False)

    def in_package(self, *packages: str) -> bool:
        """Whether the file's module is (inside) one of ``packages``."""
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def suppressed(self, line: int, code: str) -> bool:
        """Whether ``code`` is suppressed on 1-based source line ``line``."""
        if not 1 <= line <= len(self.source_lines):
            return False
        match = _SUPPRESS_RE.search(self.source_lines[line - 1])
        if match is None:
            return False
        codes = {c.strip() for c in match.group(1).split(",")}
        return code in codes


class Rule(Protocol):
    """The module-level protocol every rule file satisfies.

    Per-file rules additionally define ``check(ctx) -> Iterator[
    Violation]``; whole-program rules define ``check_project(project)``
    instead (see :class:`tools.reprolint.project.ProjectRule`) — the
    engine dispatches on which attribute the module has.  An optional
    ``SUPPRESSIBLE = False`` exempts a rule from inline waivers (used
    by R000, which polices the waivers themselves).
    """

    CODE: str
    SUMMARY: str


def _file_check(rule: Rule) -> Callable[[FileContext], Iterator[Violation]] | None:
    check: Callable[[FileContext], Iterator[Violation]] | None = getattr(
        rule, "check", None
    )
    return check


def _project_check(rule: Rule) -> Callable[..., Iterator[Violation]] | None:
    check: Callable[..., Iterator[Violation]] | None = getattr(
        rule, "check_project", None
    )
    return check


def _suppressible(rule: object) -> bool:
    return bool(getattr(rule, "SUPPRESSIBLE", True))


def extract_suppressions(source_lines: Sequence[str]) -> tuple[Suppression, ...]:
    """Every ``# reprolint: ignore[...]`` comment as a fact record.

    Returned as :class:`tools.reprolint.facts.Suppression` values so
    phase-2 rules can honor waivers without re-reading source.
    """
    out: list[Suppression] = []
    for lineno, line in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = tuple(
            sorted(c.strip() for c in match.group(1).split(",") if c.strip())
        )
        out.append(
            Suppression(line=lineno, codes=codes, reason=match.group(2).strip())
        )
    return tuple(out)


def module_path_of(path: Path, root: Path | None = None) -> str | None:
    """Dotted module path of a file under a ``src/`` tree, else None.

    ``src/repro/core/metrics.py`` -> ``repro.core.metrics``;
    ``src/repro/core/__init__.py`` -> ``repro.core``.
    """
    resolved = path if root is None else path.resolve()
    parts = list(resolved.parts)
    if "src" not in parts:
        return None
    idx = len(parts) - 1 - parts[::-1].index("src")
    module_parts = parts[idx + 1 :]
    if not module_parts:
        return None
    last = module_parts[-1]
    if last.endswith(".py"):
        module_parts[-1] = last[: -len(".py")]
    if module_parts[-1] == "__init__":
        module_parts = module_parts[:-1]
    if not module_parts:
        return None
    return ".".join(module_parts)


#: CPython 3.11's C-to-Python AST conversion tracks its recursion depth
#: in per-interpreter (not per-thread) state; two threads parsing at
#: once can interleave and die with "SystemError: AST constructor
#: recursion depth mismatch".  Serialize the parse — the fact/rule walk
#: over the finished tree is what the worker pool parallelizes.
_PARSE_LOCK = threading.Lock()


def build_context(path: str, source: str) -> FileContext:
    """Parse one file into a :class:`FileContext` (raises SyntaxError)."""
    with _PARSE_LOCK:
        tree = ast.parse(source, filename=path)
    return FileContext(
        path=path,
        module=module_path_of(Path(path)),
        tree=tree,
        source_lines=tuple(source.splitlines()),
    )


def _facts_of(ctx: FileContext) -> FileFacts:
    return extract_facts(
        path=ctx.path,
        module=ctx.module,
        tree=ctx.tree,
        suppressions=extract_suppressions(ctx.source_lines),
    )


def _check_file(ctx: FileContext, rules: Sequence[Rule]) -> list[Violation]:
    """Run the per-file rules over one context, applying waivers."""
    found: list[Violation] = []
    for rule in rules:
        check = _file_check(rule)
        if check is None:
            continue
        for violation in check(ctx):
            if _suppressible(rule) and ctx.suppressed(
                violation.line, violation.code
            ):
                continue
            found.append(violation)
    return found


def _check_projectwide(
    files: Sequence[FileFacts], rules: Sequence[Rule]
) -> list[Violation]:
    """Run the whole-program rules over the full fact set."""
    checks = [
        (rule, check)
        for rule in rules
        for check in [_project_check(rule)]
        if check is not None
    ]
    if not checks:
        return []
    from tools.reprolint.project import Project

    project = Project(files)
    found: list[Violation] = []
    for rule, check in checks:
        for violation in check(project):
            if _suppressible(rule) and project.suppressed(
                violation.path, violation.line, violation.code
            ):
                continue
            found.append(violation)
    return found


def lint_source(
    source: str,
    path: str = "src/repro/_snippet.py",
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint a source string as if it lived at ``path`` (for tests).

    Runs per-file rules *and* whole-program rules over the single-file
    project, so fire/no-fire tests for R009/R010 work on one snippet.
    """
    from tools.reprolint.rules import ALL_RULES

    ctx = build_context(path, source)
    active: Sequence[Rule] = tuple(rules) if rules is not None else ALL_RULES
    found = _check_file(ctx, active)
    if any(_project_check(r) is not None for r in active):
        found.extend(_check_projectwide([_facts_of(ctx)], active))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def lint_sources(
    sources: dict[str, str],
    rules: Sequence[Rule] | None = None,
) -> list[Violation]:
    """Lint several in-memory files as one project (for tests)."""
    from tools.reprolint.rules import ALL_RULES

    active: Sequence[Rule] = tuple(rules) if rules is not None else ALL_RULES
    found: list[Violation] = []
    files: list[FileFacts] = []
    for path in sorted(sources):
        ctx = build_context(path, sources[path])
        found.extend(_check_file(ctx, active))
        files.append(_facts_of(ctx))
    found.extend(_check_projectwide(files, active))
    found.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return found


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """All ``*.py`` files under the given files/directories, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


@dataclass
class LintResult:
    """Everything one :func:`run_lint` invocation produced."""

    violations: list[Violation]
    parse_errors: list[tuple[str, SyntaxError]]
    files: list[FileFacts]
    cache_hits: int = 0
    cache_misses: int = 0


def run_lint(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    cache_path: str | Path | None = None,
    jobs: int | None = None,
) -> LintResult:
    """The full two-phase run: facts (cached, parallel) then rules.

    Phase 1 — per file: parse, extract facts, run per-file rules.  Both
    outputs depend only on file content, so they are served from the
    content-hash cache when ``cache_path`` is given and recomputed on a
    thread pool otherwise.  Phase 2 — whole program: the per-file facts
    feed the symbol table / call graph and the project rules run once.
    """
    from tools.reprolint.cache import FactCache
    from tools.reprolint.rules import ALL_RULES

    active: Sequence[Rule] = tuple(rules) if rules is not None else ALL_RULES
    file_rules = [r for r in active if _file_check(r) is not None]
    file_codes = frozenset(r.CODE for r in file_rules)
    cache = FactCache(cache_path)
    result = LintResult(violations=[], parse_errors=[], files=[])

    sources: list[tuple[str, str]] = []  # (path, source) needing work
    for file_path in iter_python_files(paths):
        name = str(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError:
            continue
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cached = cache.lookup(name, digest, file_codes)
        if cached is not None:
            facts, violations = cached
            result.files.append(facts)
            result.violations.extend(violations)
        else:
            sources.append((name, source))

    def process(
        item: tuple[str, str]
    ) -> tuple[str, str, FileFacts | None, list[Violation], SyntaxError | None]:
        name, source = item
        try:
            ctx = build_context(name, source)
        except SyntaxError as exc:
            return name, source, None, [], exc
        return name, source, _facts_of(ctx), _check_file(ctx, file_rules), None

    if len(sources) > 1 and (jobs is None or jobs > 1):
        with ThreadPoolExecutor(max_workers=jobs or 8) as pool:
            processed = list(pool.map(process, sources))
    else:
        processed = [process(item) for item in sources]

    for name, source, facts, violations, error in processed:
        if error is not None:
            result.parse_errors.append((name, error))
            continue
        assert facts is not None
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cache.store(name, digest, file_codes, facts, violations)
        result.files.append(facts)
        result.violations.extend(violations)

    result.cache_hits = cache.hits
    result.cache_misses = cache.misses
    cache.prune({f.path for f in result.files})
    cache.save()

    result.files.sort(key=lambda f: f.path)
    result.violations.extend(_check_projectwide(result.files, active))
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    result.parse_errors.sort(key=lambda e: e[0])
    return result


def lint_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    on_error: Callable[[str, SyntaxError], None] | None = None,
) -> list[Violation]:
    """Lint every Python file under ``paths``; returns sorted violations.

    Files that fail to parse are reported through ``on_error`` (and
    otherwise skipped) — ``compileall`` in CI owns syntax checking.
    Runs uncached; the CLI passes a cache path through
    :func:`run_lint` instead.
    """
    result = run_lint(paths, rules=rules, cache_path=None)
    if on_error is not None:
        for name, exc in result.parse_errors:
            on_error(name, exc)
    return result.violations
