"""CLI: measure line coverage of src/repro over a pytest run.

``python -m tools.checkcov [--fail-under PCT] [pytest args ...]``

Everything after the checkcov options is handed to pytest verbatim
(default: ``-x -q``).  Must run from the repo root with ``src`` on
``PYTHONPATH`` (or installed), like the test suite itself.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.checkcov import LineCollector, measure_tree


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="checkcov",
        description="stdlib line coverage of src/repro under pytest",
    )
    parser.add_argument(
        "--fail-under",
        type=float,
        default=0.0,
        metavar="PCT",
        help="exit non-zero if total coverage is below this percentage",
    )
    parser.add_argument(
        "pytest_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to pytest (default: -x -q)",
    )
    options = parser.parse_args(argv)

    root = Path("src/repro")
    if not root.is_dir():
        print("checkcov: run from the repo root (src/repro not found)",
              file=sys.stderr)
        return 2

    import pytest

    collector = LineCollector(root)
    collector.install()
    try:
        exit_code = pytest.main(options.pytest_args or ["-x", "-q"])
    finally:
        collector.uninstall()
    if exit_code != 0:
        print(f"checkcov: pytest failed (exit {exit_code}); "
              "coverage not evaluated", file=sys.stderr)
        return int(exit_code)

    per_file = measure_tree(root, collector.hits)
    covered = sum(hit for hit, _ in per_file.values())
    executable = sum(total for _, total in per_file.values())
    percent = 100.0 * covered / executable if executable else 100.0

    width = max(len(_rel(name)) for name in per_file)
    for name, (hit, total) in sorted(per_file.items()):
        pct = 100.0 * hit / total if total else 100.0
        print(f"{_rel(name):<{width}}  {hit:>5}/{total:<5} {pct:6.1f}%")
    print(f"{'TOTAL':<{width}}  {covered:>5}/{executable:<5} "
          f"{percent:6.1f}%")

    if percent < options.fail_under:
        print(
            f"checkcov: coverage {percent:.1f}% is below the "
            f"--fail-under floor {options.fail_under:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


def _rel(filename: str) -> str:
    try:
        return str(Path(filename).relative_to(Path.cwd()))
    except ValueError:
        return filename


if __name__ == "__main__":
    raise SystemExit(main())
