"""A dependency-free line-coverage measurer for the repro library.

CI runs the real ``pytest-cov``/``coverage.py`` gate; this tool exists
so the same number can be measured *locally* with nothing but the
standard library (the dev container deliberately installs no coverage
packages).  It is a plain ``sys.settrace`` collector:

- :func:`executable_lines` statically enumerates the traceable lines of
  a source file from the compiled code object's ``co_lines`` tables
  (recursing into nested functions/classes/comprehensions);
- :class:`LineCollector` records, per file under ``src/repro``, which
  of those lines fired a ``line`` trace event — on every thread, via
  ``threading.settrace`` (the serving-layer suites execute most of
  their lines on worker threads).

Usage::

    python -m tools.checkcov [--fail-under PCT] [pytest args ...]

installs the collector, runs pytest in-process, prints a per-package
summary and exits non-zero if total coverage is below ``--fail-under``.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path
from types import CodeType, FrameType
from typing import Iterator

__all__ = ["executable_lines", "LineCollector", "measure_tree"]


def _code_objects(code: CodeType) -> Iterator[CodeType]:
    """The code object and every code object nested inside it."""
    yield code
    for const in code.co_consts:
        if isinstance(const, CodeType):
            yield from _code_objects(const)


def executable_lines(source: str, filename: str = "<src>") -> set[int]:
    """Line numbers that can fire a ``line`` trace event.

    Compiled rather than parsed: ``co_lines`` is exactly the table the
    interpreter consults when emitting trace events, so the denominator
    matches the collector's numerator by construction.
    """
    lines: set[int] = set()
    for code in _code_objects(compile(source, filename, "exec")):
        for _start, _end, line in code.co_lines():
            if line is not None and line > 0:
                lines.add(line)
    return lines


class LineCollector:
    """Records executed line numbers for files under one directory."""

    def __init__(self, root: Path) -> None:
        self.root = str(root.resolve()) + "/"
        self.hits: dict[str, set[int]] = {}
        self._lock = threading.Lock()

    def trace(
        self, frame: FrameType, event: str, arg: object
    ) -> object:
        filename = frame.f_code.co_filename
        if not filename.startswith(self.root):
            return None  # prune: no line events for this frame
        if event == "line":
            with self._lock:
                self.hits.setdefault(filename, set()).add(frame.f_lineno)
        return self.trace

    def install(self) -> None:
        """Start tracing on the current thread and all future threads."""
        threading.settrace(self.trace)
        sys.settrace(self.trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def measure_tree(
    root: Path, hits: dict[str, set[int]]
) -> dict[str, tuple[int, int]]:
    """Per-file ``(covered, executable)`` counts for a source tree.

    Files that never produced a trace event still appear, with zero
    covered lines — unimported modules count against the total, exactly
    as coverage.py scores them.
    """
    out: dict[str, tuple[int, int]] = {}
    for path in sorted(root.rglob("*.py")):
        resolved = str(path.resolve())
        expected = executable_lines(
            path.read_text(encoding="utf-8"), resolved
        )
        covered = hits.get(resolved, set()) & expected
        out[resolved] = (len(covered), len(expected))
    return out
