"""CLI: ``python -m tools.apicheck [--write]``.

Default mode checks the live public surface against the golden
manifest and exits 1 on drift, printing a unified diff.  ``--write``
regenerates the manifest (the deliberate way to change the API).
"""

from __future__ import annotations

import argparse
import difflib
import sys
from typing import Sequence

from tools.apicheck import MANIFEST_PATH, render


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.apicheck",
        description="Check the public API surface against its manifest.",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="regenerate tests/api/manifest.txt from the live surface",
    )
    args = parser.parse_args(argv)

    current = render()
    if args.write:
        MANIFEST_PATH.write_text(current, encoding="utf-8")
        print(f"manifest written to {MANIFEST_PATH}")
        return 0
    if not MANIFEST_PATH.exists():
        print(
            f"{MANIFEST_PATH} missing; run python -m tools.apicheck "
            "--write",
            file=sys.stderr,
        )
        return 1
    golden = MANIFEST_PATH.read_text(encoding="utf-8")
    if golden == current:
        print(f"public API surface matches {MANIFEST_PATH}")
        return 0
    diff = difflib.unified_diff(
        golden.splitlines(keepends=True),
        current.splitlines(keepends=True),
        fromfile=str(MANIFEST_PATH),
        tofile="live surface",
    )
    sys.stderr.writelines(diff)
    print(
        "\npublic API surface drifted; if intentional, regenerate with "
        "python -m tools.apicheck --write",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
