"""The public-API manifest: render and check the stable surface.

The stable import surface — ``repro``, ``repro.api`` and
``repro.serve`` (see ``docs/API.md`` for the tier definitions) — is
pinned as a golden manifest at ``tests/api/manifest.txt``.  One line
per exported name:

- functions carry their full signature;
- dataclasses carry their field names and annotations;
- exception classes carry their base-class chain within the library;
- everything else carries its kind.

Any change to the surface — a new export, a renamed parameter, a
default flipped — shows up as a manifest diff, so API changes are
always *deliberate*: the author regenerates the manifest
(``python -m tools.apicheck --write``) and the reviewer sees exactly
what the public contract gained or lost.  ``python -m tools.apicheck``
(the CI mode) exits non-zero on drift.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
from pathlib import Path

#: The modules whose exports form the stable public surface.
PUBLIC_MODULES = ("repro", "repro.api", "repro.serve")

#: The golden manifest, relative to the repo root.
MANIFEST_PATH = Path("tests") / "api" / "manifest.txt"


def _describe(qualname: str, obj: object) -> str:
    if inspect.isclass(obj):
        if dataclasses.is_dataclass(obj):
            fields = ", ".join(
                f"{f.name}: {f.type}" for f in dataclasses.fields(obj)
            )
            frozen = (
                "frozen dataclass"
                if obj.__dataclass_params__.frozen  # type: ignore[attr-defined]
                else "dataclass"
            )
            return f"{qualname}: {frozen}({fields})"
        if issubclass(obj, BaseException):
            bases = " <- ".join(
                base.__name__
                for base in obj.__mro__[1:]
                if base.__module__.startswith("repro")
                or base in (Exception, KeyError)
            )
            return f"{qualname}: exception({bases})"
        return f"{qualname}: class"
    if inspect.isfunction(obj):
        return f"{qualname}: def {inspect.signature(obj)}"
    if isinstance(obj, str):
        return f"{qualname}: str = {obj!r}"
    if isinstance(obj, (int, float, bool)):
        return f"{qualname}: {type(obj).__name__} = {obj!r}"
    if inspect.ismodule(obj):
        return f"{qualname}: module"
    return f"{qualname}: {type(obj).__name__}"


def public_surface() -> list[str]:
    """One line per exported name, sorted within each module."""
    lines: list[str] = []
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise RuntimeError(
                f"{module_name} has no __all__; the public surface "
                "must be explicit"
            )
        lines.append(f"# {module_name}")
        for name in sorted(exported):
            lines.append(
                _describe(f"{module_name}.{name}", getattr(module, name))
            )
        lines.append("")
    return lines


def render() -> str:
    """The manifest file's full contents."""
    header = (
        "# Golden manifest of the stable public API surface.\n"
        "# Regenerate deliberately with: python -m tools.apicheck"
        " --write\n"
        "# Checked by tests/api/test_manifest.py and the CI lint job.\n"
        "\n"
    )
    return header + "\n".join(public_surface())
