"""Tests for repro.chunks.ranges — the CreateChunkRanges algorithm."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunks.ranges import (
    ChunkRange,
    DimensionChunking,
    create_chunk_ranges,
    desired_sizes_for_ratio,
    uniform_division,
)
from repro.exceptions import ChunkingError
from repro.schema.builder import build_dimension


class TestChunkRange:
    def test_len_and_contains(self):
        r = ChunkRange(2, 5)
        assert len(r) == 3
        assert 2 in r and 4 in r
        assert 5 not in r and 1 not in r

    def test_invalid_rejected(self):
        with pytest.raises(ChunkingError):
            ChunkRange(3, 3)
        with pytest.raises(ChunkingError):
            ChunkRange(-1, 2)


class TestUniformDivision:
    def test_exact(self):
        ranges = uniform_division(0, 6, 2)
        assert [(r.lo, r.hi) for r in ranges] == [(0, 2), (2, 4), (4, 6)]

    def test_remainder_last(self):
        ranges = uniform_division(0, 7, 3)
        assert [(r.lo, r.hi) for r in ranges] == [(0, 3), (3, 6), (6, 7)]

    def test_offset_start(self):
        ranges = uniform_division(4, 8, 2)
        assert [(r.lo, r.hi) for r in ranges] == [(4, 6), (6, 8)]

    def test_bad_inputs(self):
        with pytest.raises(ChunkingError):
            uniform_division(0, 4, 0)
        with pytest.raises(ChunkingError):
            uniform_division(4, 4, 1)


class TestDesiredSizes:
    def test_proportional(self):
        dim = build_dimension("d", [10, 100])
        sizes = desired_sizes_for_ratio(dim, 0.1)
        assert sizes == {1: 1, 2: 10}

    def test_clamped_to_at_least_one(self):
        dim = build_dimension("d", [3, 9])
        sizes = desired_sizes_for_ratio(dim, 0.01)
        assert sizes == {1: 1, 2: 1}

    def test_bad_ratio(self):
        dim = build_dimension("d", [3])
        with pytest.raises(ChunkingError):
            desired_sizes_for_ratio(dim, 0.0)
        with pytest.raises(ChunkingError):
            desired_sizes_for_ratio(dim, 1.5)


class TestCreateChunkRanges:
    def test_figure6_style(self):
        """Ranges at level l+1 are generated within each level-l range."""
        dim = build_dimension("d", [4, 12])
        ranges = create_chunk_ranges(dim, {1: 2, 2: 3})
        assert [(r.lo, r.hi) for r in ranges[1]] == [(0, 2), (2, 4)]
        # Each level-1 range maps to 6 leaf values, divided in 3s.
        assert [(r.lo, r.hi) for r in ranges[2]] == [
            (0, 3), (3, 6), (6, 9), (9, 12),
        ]

    def test_hierarchy_constrains_ranges(self):
        """A range never straddles a parent-range boundary (Figure 5 bug)."""
        dim = build_dimension("d", [3, 7], fanout="even")
        # Level-2 desired size 5 exceeds some parents' child blocks, so the
        # actual ranges shrink to the blocks.
        ranges = create_chunk_ranges(dim, {1: 1, 2: 5})
        level1_bounds = {r.lo for r in ranges[1]} | {r.hi for r in ranges[1]}
        leaf_bounds = set()
        for parent in ranges[1]:
            lo, hi = dim.map_range(1, (parent.lo, parent.hi), 2)
            leaf_bounds.update((lo, hi))
        for r in ranges[2]:
            # No leaf range may cross a parent boundary.
            for bound in leaf_bounds:
                assert not (r.lo < bound < r.hi)

    def test_missing_level_size_rejected(self):
        dim = build_dimension("d", [2, 4])
        with pytest.raises(ChunkingError):
            create_chunk_ranges(dim, {1: 1})

    def test_unknown_level_rejected(self):
        dim = build_dimension("d", [2])
        with pytest.raises(ChunkingError):
            create_chunk_ranges(dim, {1: 1, 2: 1})

    def test_sequence_sizes_accepted(self):
        dim = build_dimension("d", [2, 4])
        ranges = create_chunk_ranges(dim, [1, 2])
        assert len(ranges[1]) == 2
        assert len(ranges[2]) == 2


class TestDimensionChunking:
    @pytest.fixture()
    def chunking(self):
        dim = build_dimension("d", [4, 12, 24])
        return DimensionChunking(dim, {1: 2, 2: 3, 3: 4})

    def test_counts(self, chunking):
        assert chunking.num_chunks(0) == 1
        assert chunking.num_chunks(1) == 2
        assert chunking.num_chunks(2) == 4

    def test_range_at_and_bounds(self, chunking):
        assert chunking.range_at(1, 0) == ChunkRange(0, 2)
        with pytest.raises(ChunkingError):
            chunking.range_at(1, 2)

    def test_chunk_index_of(self, chunking):
        starts = chunking.range_starts(2)
        for ordinal in range(12):
            index = chunking.chunk_index_of(2, ordinal)
            r = chunking.range_at(2, index)
            assert ordinal in r
        with pytest.raises(ChunkingError):
            chunking.chunk_index_of(2, 12)

    def test_chunk_span_for_interval(self, chunking):
        lo, hi = chunking.chunk_span_for_interval(2, (2, 7))
        covered_lo = chunking.range_at(2, lo).lo
        covered_hi = chunking.range_at(2, hi - 1).hi
        assert covered_lo <= 2 and covered_hi >= 7
        with pytest.raises(ChunkingError):
            chunking.chunk_span_for_interval(2, (5, 5))

    def test_child_span(self, chunking):
        assert chunking.child_span(0, 0) == (0, chunking.num_chunks(1))
        lo, hi = chunking.child_span(1, 0)
        parent = chunking.range_at(1, 0)
        mapped = chunking.dimension.map_range(1, (parent.lo, parent.hi), 2)
        assert chunking.range_at(2, lo).lo == mapped[0]
        assert chunking.range_at(2, hi - 1).hi == mapped[1]
        with pytest.raises(ChunkingError):
            chunking.child_span(3, 0)

    def test_descend_span_identity(self, chunking):
        assert chunking.descend_span(2, 3, 2) == (3, 4)
        assert chunking.descend_span(0, 0, 0) == (0, 1)

    def test_leaf_span_covers_parent_exactly(self, chunking):
        for index in range(chunking.num_chunks(1)):
            parent = chunking.range_at(1, index)
            leaf_interval = chunking.dimension.map_range(
                1, (parent.lo, parent.hi), 3
            )
            lo, hi = chunking.leaf_span(1, index)
            assert chunking.range_at(3, lo).lo == leaf_interval[0]
            assert chunking.range_at(3, hi - 1).hi == leaf_interval[1]

    def test_unknown_level_rejected(self, chunking):
        with pytest.raises(ChunkingError):
            chunking.ranges(4)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_closure_property_on_random_hierarchies(data):
    """CreateChunkRanges output always satisfies the closure property.

    For every level and range, the range maps to whole ranges one level
    down (DimensionChunking validates this at construction), and the
    ranges at each level exactly tile the domain.
    """
    depth = data.draw(st.integers(1, 4))
    cards = [data.draw(st.integers(1, 8))]
    for _ in range(depth - 1):
        cards.append(cards[-1] * data.draw(st.integers(1, 4)))
    seed = data.draw(st.integers(0, 999))
    dim = build_dimension("d", cards, fanout="random", seed=seed)
    sizes = {
        level: data.draw(st.integers(1, max(1, cards[level - 1])))
        for level in range(1, depth + 1)
    }
    chunking = DimensionChunking(dim, sizes)  # validates closure internally
    for level in range(1, depth + 1):
        ranges = chunking.ranges(level)
        # Exact tiling of the domain.
        assert ranges[0].lo == 0
        assert ranges[-1].hi == cards[level - 1]
        for a, b in zip(ranges, ranges[1:]):
            assert a.hi == b.lo
    # descend_span tiles the leaf level when applied to all top ranges.
    leaf = depth
    covered = []
    for index in range(chunking.num_chunks(1)):
        lo, hi = chunking.descend_span(1, index, leaf)
        covered.extend(range(lo, hi))
    assert covered == list(range(chunking.num_chunks(leaf)))


class TestClosurePropertyRandomized:
    """CreateChunkRanges satisfies closure for arbitrary hierarchies.

    The paper's Section 3.4 claim, verified structurally by
    :func:`repro.invariants.check_closure`: at every level the ranges
    are disjoint, contiguous, and complete, and every parent range maps
    to a whole, in-order span of child ranges.
    """

    @given(
        cardinalities=st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=4
        ).map(
            lambda growth: [
                # Cumulative products: each level at least as populous
                # as its parent, up to 12**4 members at the leaf.
                math.prod(growth[: i + 1])
                for i in range(len(growth))
            ]
        ),
        sizes_seed=st.randoms(use_true_random=False),
        fanout=st.sampled_from(["even", "random"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_closure_holds(self, cardinalities, sizes_seed, fanout, seed):
        from repro.invariants import check_closure

        dim = build_dimension(
            "D", cardinalities, fanout=fanout, seed=seed
        )
        desired = {
            level: sizes_seed.randint(1, dim.cardinality(level))
            for level in range(1, len(cardinalities) + 1)
        }
        check_closure(DimensionChunking(dim, desired))
