"""Tests for repro.chunks.grid — chunk numbering and ComputeChunkNums."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunks.grid import ChunkGrid, ChunkSpace
from repro.chunks.ranges import DimensionChunking
from repro.exceptions import ChunkingError
from repro.schema.builder import build_star_schema


@pytest.fixture()
def space(small_schema):
    return ChunkSpace(small_schema, 0.25, base_tuples=1000)


class TestChunkNumbering:
    def test_row_major_matches_figure8(self):
        """3 x 4 grid: (0,0)->0, (1,2)->6 under row-major numbering."""
        schema = build_star_schema([[3], [4]])
        space = ChunkSpace(schema, {"D0": {1: 1}, "D1": {1: 1}})
        grid = space.grid((1, 1))
        assert grid.shape == (3, 4)
        assert grid.chunk_number((0, 0)) == 0
        assert grid.chunk_number((1, 2)) == 6
        assert grid.chunk_number((2, 3)) == 11

    def test_roundtrip_all(self, space):
        grid = space.grid((2, 1))
        for number in range(grid.num_chunks):
            assert grid.chunk_number(grid.coords_of(number)) == number

    def test_bounds(self, space):
        grid = space.grid((1, 1))
        with pytest.raises(ChunkingError):
            grid.coords_of(grid.num_chunks)
        with pytest.raises(ChunkingError):
            grid.chunk_number((0,))
        with pytest.raises(ChunkingError):
            grid.chunk_number((99, 0))

    def test_all_level_dims_have_one_slot(self, space):
        grid = space.grid((0, 1))
        assert grid.shape[0] == 1
        assert grid.num_chunks == grid.shape[1]


class TestCellGeometry:
    def test_cell_ranges(self, space):
        grid = space.grid((1, 0))
        ranges = grid.cell_ranges(0)
        assert ranges[0] is not None
        assert ranges[1] is None  # ALL dimension

    def test_cell_capacity(self, space):
        grid = space.grid((2, 1))
        total = sum(
            grid.cell_capacity(number) for number in range(grid.num_chunks)
        )
        schema = space.schema
        assert total == (
            schema.dimensions[0].cardinality(2)
            * schema.dimensions[1].cardinality(1)
        )


class TestComputeChunkNums:
    def test_full_selection_is_all_chunks(self, space):
        grid = space.grid((2, 2))
        numbers = grid.chunk_numbers_for_selection((None, None))
        assert numbers == list(range(grid.num_chunks))

    def test_selection_covers_query_region(self, space):
        grid = space.grid((2, 2))
        numbers = grid.chunk_numbers_for_selection(((3, 7), (1, 5)))
        # Every selected cell must fall in some returned chunk.
        covered = set()
        for number in numbers:
            ranges = grid.cell_ranges(number)
            for o0 in range(ranges[0].lo, ranges[0].hi):
                for o1 in range(ranges[1].lo, ranges[1].hi):
                    covered.add((o0, o1))
        for o0 in range(3, 7):
            for o1 in range(1, 5):
                assert (o0, o1) in covered

    def test_sorted_ascending(self, space):
        grid = space.grid((2, 2))
        numbers = grid.chunk_numbers_for_selection(((0, 9), (0, 7)))
        assert numbers == sorted(numbers)

    def test_count_matches_enumeration(self, space):
        grid = space.grid((2, 1))
        selection = ((2, 9), None)
        assert grid.count_for_selection(selection) == len(
            grid.chunk_numbers_for_selection(selection)
        )

    def test_selection_on_all_dim_rejected(self, space):
        grid = space.grid((0, 1))
        with pytest.raises(ChunkingError):
            grid.chunk_numbers_for_selection(((0, 2), None))

    def test_wrong_arity_rejected(self, space):
        grid = space.grid((1, 1))
        with pytest.raises(ChunkingError):
            grid.chunk_numbers_for_selection((None,))


class TestChunkSpace:
    def test_grid_memoized(self, space):
        assert space.grid((1, 1)) is space.grid((1, 1))

    def test_base_grid(self, space):
        assert space.base_grid.groupby == space.schema.base_groupby

    def test_chunking_lookup(self, space):
        assert space.chunking("D0").dimension.name == "D0"
        with pytest.raises(ChunkingError):
            space.chunking("nope")

    def test_benefit_decreases_with_detail(self, space):
        coarse = space.chunk_benefit((1, 0))
        fine = space.chunk_benefit(space.schema.base_groupby)
        assert coarse > fine > 0

    def test_benefit_requires_base_tuples(self, small_schema):
        space = ChunkSpace(small_schema, 0.25)
        assert space.chunk_benefit((1, 1)) == 0.0
        space.set_base_tuples(100)
        assert space.chunk_benefit((1, 1)) > 0
        with pytest.raises(ChunkingError):
            space.set_base_tuples(-1)

    def test_explicit_sizes(self, small_schema):
        space = ChunkSpace(
            small_schema,
            {"D0": {1: 2, 2: 4}, "D1": {1: 2, 2: 4}},
        )
        assert space.grid((1, 1)).shape == (3, 2)

    def test_missing_dimension_sizes_rejected(self, small_schema):
        with pytest.raises(ChunkingError):
            ChunkSpace(small_schema, {"D0": {1: 1, 2: 1}})


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_selection_envelope_is_tight(data):
    """Chunks returned for a selection all intersect the selection."""
    schema = build_star_schema([[6, 18], [4, 12]])
    space = ChunkSpace(schema, 0.2)
    level0 = data.draw(st.integers(0, 2))
    level1 = data.draw(st.integers(0, 2))
    if level0 == 0 and level1 == 0:
        level0 = 1
    grid = space.grid((level0, level1))
    selection = []
    for dim_pos, level in ((0, level0), (1, level1)):
        if level == 0:
            selection.append(None)
            continue
        card = schema.dimensions[dim_pos].cardinality(level)
        lo = data.draw(st.integers(0, card - 1))
        hi = data.draw(st.integers(lo + 1, card))
        selection.append((lo, hi))
    numbers = grid.chunk_numbers_for_selection(tuple(selection))
    assert numbers
    for number in numbers:
        for rng, interval in zip(grid.cell_ranges(number), selection):
            if rng is None or interval is None:
                continue
            assert rng.lo < interval[1] and interval[0] < rng.hi
