"""Tests for repro.chunks.closure — the closure property across levels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.chunks.closure import (
    source_chunk_count,
    source_chunk_numbers,
    source_spans,
)
from repro.chunks.grid import ChunkSpace
from repro.exceptions import ChunkingError
from repro.schema.builder import build_star_schema


@pytest.fixture()
def space():
    schema = build_star_schema([[4, 12], [3, 9]])
    return ChunkSpace(schema, 0.25)


def cell_leaf_set(space, groupby, number):
    """All leaf-cell coordinates one chunk covers."""
    grid = space.grid(groupby)
    ranges = grid.cell_ranges(number)
    axes = []
    for dim, level, rng in zip(space.schema.dimensions, groupby, ranges):
        if rng is None:
            axes.append(range(dim.leaf_cardinality))
        else:
            cells = []
            for ordinal in range(rng.lo, rng.hi):
                lo, hi = dim.descend_range(level, ordinal, dim.leaf_level)
                cells.extend(range(lo, hi))
            axes.append(cells)
    return {(a, b) for a in axes[0] for b in axes[1]}


class TestSourceSpans:
    def test_base_chunks_tile_target_exactly(self, space):
        """Paper Figure 3: a chunk equals the union of its source chunks."""
        base = space.schema.base_groupby
        for groupby in [(1, 1), (1, 0), (0, 2), (2, 1)]:
            grid = space.grid(groupby)
            for number in range(grid.num_chunks):
                target_cells = cell_leaf_set(space, groupby, number)
                source_cells = set()
                for source in source_chunk_numbers(space, groupby, number):
                    source_cells |= cell_leaf_set(space, base, source)
                assert source_cells == target_cells, (groupby, number)

    def test_intermediate_source_level(self, space):
        """Chunks can be computed from any finer group-by, not just base."""
        target, source = (1, 0), (2, 1)
        grid = space.grid(target)
        for number in range(grid.num_chunks):
            target_cells = cell_leaf_set(space, target, number)
            source_cells = set()
            for src in source_chunk_numbers(space, target, number, source):
                source_cells |= cell_leaf_set(space, source, src)
            assert source_cells == target_cells

    def test_count_matches_enumeration(self, space):
        assert source_chunk_count(space, (1, 1), 0) == len(
            source_chunk_numbers(space, (1, 1), 0)
        )

    def test_same_groupby_is_identity(self, space):
        base = space.schema.base_groupby
        assert source_chunk_numbers(space, base, 5, base) == [5]

    def test_coarser_source_rejected(self, space):
        with pytest.raises(ChunkingError):
            source_spans(space, (2, 2), 0, (1, 1))

    def test_partition_of_base_chunks(self, space):
        """Distinct target chunks use disjoint base chunks, covering all."""
        groupby = (1, 2)
        grid = space.grid(groupby)
        seen: set[int] = set()
        for number in range(grid.num_chunks):
            sources = set(source_chunk_numbers(space, groupby, number))
            assert not (sources & seen)
            seen |= sources
        assert seen == set(range(space.base_grid.num_chunks))


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_closure_tiles_on_random_geometry(data):
    cards0 = [3, data.draw(st.integers(3, 9))]
    cards1 = [2, data.draw(st.integers(2, 8))]
    schema = build_star_schema([cards0, cards1], seed=data.draw(st.integers(0, 99)),
                               fanout="random")
    ratio = data.draw(st.sampled_from([0.15, 0.25, 0.5]))
    space = ChunkSpace(schema, ratio)
    level0 = data.draw(st.integers(0, 2))
    level1 = data.draw(st.integers(0, 2))
    groupby = (level0, level1)
    grid = space.grid(groupby)
    number = data.draw(st.integers(0, grid.num_chunks - 1))
    target_cells = cell_leaf_set(space, groupby, number)
    source_cells = set()
    for source in source_chunk_numbers(space, groupby, number):
        source_cells |= cell_leaf_set(space, schema.base_groupby, source)
    assert source_cells == target_cells
