"""Pickle round-trip manifest for process-boundary value objects.

Process-parallel serving (``docs/PARALLEL.md``) ships value objects
across the worker boundary: the :class:`~repro.serve.proc.WorkItem` /
:class:`~repro.serve.proc.WorkResult` envelopes, the
:class:`~repro.serve.proc.EngineSpec` that seeds each replica, and —
through payloads, replay and reporting — the pipeline stage values,
fault plans and snapshot trees.  Every frozen dataclass in those
modules must survive ``pickle`` with all observable state intact.

Manifest-style: the completeness test reflects over the boundary
modules and fails when a frozen dataclass has no strategy here, so a
new stage value cannot silently become unpicklable.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import snapshot as snapshot_mod
from repro.core.chunk import ChunkKey
from repro.core.snapshot import (
    CacheContention,
    ChunkCacheSnapshot,
    FaultStats,
    GroupByUsage,
    QueryCacheSnapshot,
    ShapeUsage,
    ShardStats,
    Snapshot,
    StageStats,
)
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import get_system
from repro.faults import plan as plan_mod
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.pipeline import stages as stages_mod
from repro.pipeline.stages import (
    AnalyzedQuery,
    ChunkPlan,
    ResolvedPart,
    ResolverOutcome,
)
from repro.query.model import StarQuery
from repro.serve import proc as proc_mod
from repro.serve.proc import EngineSpec, WorkItem, WorkResult
from repro.serve.session import QueryFailure

#: The modules whose frozen dataclasses cross the worker boundary.
BOUNDARY_MODULES = (stages_mod, plan_mod, snapshot_mod, proc_mod)

FEW = settings(max_examples=25, deadline=None)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_names = st.text(alphabet="abcdefghij", min_size=1, max_size=6)
_small_ints = st.integers(min_value=0, max_value=10_000)
_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
_groupbys = st.lists(
    st.integers(0, 3), min_size=1, max_size=3
).map(tuple)
_aggregates = st.lists(
    st.tuples(_names, st.sampled_from(("sum", "count", "min", "max"))),
    min_size=1,
    max_size=3,
).map(tuple)
_rows = st.lists(
    st.integers(-1000, 1000), min_size=0, max_size=8
).map(lambda v: np.asarray(v, dtype=np.float64))


@st.composite
def star_queries(draw):
    """Real validated queries against the (memoized) smoke schema."""
    schema = get_system(SMOKE_SCALE).schema
    groupby = tuple(
        draw(st.integers(0, dim.leaf_level))
        for dim in schema.dimensions
    )
    return StarQuery.build(schema, groupby)


@st.composite
def analyzed_queries(draw):
    query = draw(star_queries())
    partitions = draw(
        st.lists(_small_ints, min_size=1, max_size=4).map(tuple)
    )
    meta = draw(st.dictionaries(_names, _small_ints, max_size=2))
    return AnalyzedQuery.from_query(query, partitions, **meta)


_resolved_parts = st.builds(
    ResolvedPart,
    number=_small_ints,
    rows=_rows,
    resolver=st.sampled_from(("cache", "derive", "backend")),
    tuples_from_cache=_small_ints,
    saved=st.booleans(),
)

_fault_specs = st.builds(
    FaultSpec,
    kind=st.sampled_from(FAULT_KINDS),
    rate=st.floats(min_value=0.0, max_value=1.0),
    latency=st.floats(min_value=0.0, max_value=5.0),
    pressure=st.integers(1, 5),
)

_fault_plans = st.builds(
    FaultPlan,
    seed=st.integers(0, 2**32),
    specs=st.lists(
        _fault_specs,
        unique_by=lambda spec: spec.kind,
        max_size=len(FAULT_KINDS),
    ).map(tuple),
)

_stage_stats = st.builds(
    StageStats,
    name=_names,
    calls=_floats,
    wall_seconds=_floats,
    modelled_time=_floats,
    partitions=_floats,
    pages_read=_floats,
    tuples_scanned=_floats,
    lock_wait_seconds=_floats,
    faults=_floats,
    retries=_floats,
    degraded=_floats,
    backoff_seconds=_floats,
    coalesce_seconds=_floats,
)

_shard_stats = st.builds(
    ShardStats,
    shard=st.integers(0, 7),
    capacity_bytes=_small_ints,
    used_bytes=_small_ints,
    entries=_small_ints,
    hits=_small_ints,
    misses=_small_ints,
    evictions=_small_ints,
    lock_wait_seconds=_floats,
    lock_acquisitions=_small_ints,
    quarantined=st.booleans(),
    quarantines=_small_ints,
    readmissions=_small_ints,
    quarantine_rejects=_small_ints,
)

_cache_contentions = st.builds(
    CacheContention,
    num_shards=st.integers(1, 8),
    lock_wait_seconds=_floats,
    lock_acquisitions=_small_ints,
    hit_skew=_floats,
    quarantines=_small_ints,
    readmissions=_small_ints,
    quarantine_rejects=_small_ints,
    per_shard=st.lists(_shard_stats, max_size=3).map(tuple),
)

_chunk_snapshots = st.builds(
    ChunkCacheSnapshot,
    used_bytes=_small_ints,
    capacity_bytes=_small_ints,
    entries=_small_ints,
    hit_ratio=_floats,
    evictions=_small_ints,
    per_groupby=st.lists(
        st.builds(
            GroupByUsage,
            groupby=_groupbys,
            chunks=_small_ints,
            bytes=_small_ints,
            benefit=_floats,
        ),
        max_size=3,
    ).map(tuple),
    stages=st.lists(_stage_stats, max_size=3).map(tuple),
    resolved_by=st.lists(
        st.tuples(_names, _small_ints), max_size=3
    ).map(tuple),
    poisoned_puts=_small_ints,
    pressure_evictions=_small_ints,
    contention=st.none() | _cache_contentions,
)

_query_snapshots = st.builds(
    QueryCacheSnapshot,
    used_bytes=_small_ints,
    capacity_bytes=_small_ints,
    entries=_small_ints,
    redundancy_ratio=_floats,
    per_shape=st.lists(
        st.builds(
            ShapeUsage,
            key=_names,
            results=_small_ints,
            bytes=_small_ints,
            benefit=_floats,
        ),
        max_size=3,
    ).map(tuple),
    stages=st.lists(_stage_stats, max_size=3).map(tuple),
    resolved_by=st.lists(
        st.tuples(_names, _small_ints), max_size=3
    ).map(tuple),
)


@st.composite
def engine_specs(draw):
    """Specs over the real smoke system, varying the record slice."""
    system = get_system(SMOKE_SCALE)
    count = draw(st.integers(1, 16))
    return EngineSpec(
        schema=system.schema,
        space=system.space,
        records=system.records[:count],
        page_size=draw(st.sampled_from((1024, 4096))),
        buffer_pool_pages=draw(st.integers(8, 64)),
    )


#: class -> instance strategy.  The completeness test below keeps this
#: in lockstep with the frozen dataclasses of BOUNDARY_MODULES.
MANIFEST = {
    AnalyzedQuery: analyzed_queries(),
    ResolvedPart: _resolved_parts,
    ResolverOutcome: st.builds(
        ResolverOutcome,
        parts=st.dictionaries(_small_ints, _resolved_parts, max_size=3),
        report=st.none(),
    ),
    ChunkPlan: st.builds(
        ChunkPlan,
        present=st.lists(_small_ints, max_size=4).map(tuple),
        derived=st.lists(_small_ints, max_size=4).map(tuple),
        missing=st.lists(_small_ints, max_size=4).map(tuple),
    ),
    FaultSpec: _fault_specs,
    FaultPlan: _fault_plans,
    StageStats: _stage_stats,
    GroupByUsage: st.builds(
        GroupByUsage,
        groupby=_groupbys,
        chunks=_small_ints,
        bytes=_small_ints,
        benefit=_floats,
    ),
    ShapeUsage: st.builds(
        ShapeUsage,
        key=_names,
        results=_small_ints,
        bytes=_small_ints,
        benefit=_floats,
    ),
    FaultStats: st.builds(
        FaultStats,
        poisoned_puts=_small_ints,
        pressure_evictions=_small_ints,
        faults=_floats,
        retries=_floats,
        degraded=_floats,
        backoff_seconds=_floats,
    ),
    ShardStats: _shard_stats,
    CacheContention: _cache_contentions,
    ChunkCacheSnapshot: _chunk_snapshots,
    QueryCacheSnapshot: _query_snapshots,
    Snapshot: st.one_of(
        _chunk_snapshots.map(lambda c: Snapshot("chunk", c)),
        _query_snapshots.map(lambda c: Snapshot("query", c)),
    ),
    EngineSpec: engine_specs(),
    WorkItem: st.builds(
        WorkItem,
        req_id=_small_ints,
        groupby=_groupbys,
        numbers=st.lists(_small_ints, min_size=1, max_size=4).map(tuple),
        aggregates=_aggregates,
        leaf_filters=st.none()
        | st.lists(
            st.none() | st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=3,
        ).map(tuple),
        prefer_base=st.booleans(),
    ),
    WorkResult: st.builds(
        WorkResult,
        req_id=_small_ints,
        payloads=st.lists(
            st.tuples(_small_ints, _rows), max_size=3
        ).map(tuple),
        error=st.none() | _names,
    ),
    # Boundary-adjacent values: cache keys and tolerated failures also
    # travel through serialized reports, so they ride the same gate.
    ChunkKey: st.builds(
        ChunkKey,
        groupby=_groupbys,
        number=_small_ints,
        aggregates=_aggregates,
        fixed_predicates=st.frozensets(_names, max_size=3),
    ),
    QueryFailure: st.builds(
        QueryFailure,
        seq=_small_ints,
        stream=_names,
        kind=_names,
        message=_names,
        pages_read=_small_ints,
    ),
}

# ---------------------------------------------------------------------------
# Structural equality (numpy- and schema-aware)
# ---------------------------------------------------------------------------


def _assert_equal(a, b):
    assert type(a) is type(b), (type(a), type(b))
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype
        assert np.array_equal(a, b)
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        for field in dataclasses.fields(a):
            _assert_equal(
                getattr(a, field.name), getattr(b, field.name)
            )
    elif isinstance(a, dict):
        assert set(a) == set(b)
        for key in a:
            _assert_equal(a[key], b[key])
    elif isinstance(a, (tuple, list)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            _assert_equal(x, y)
    elif isinstance(a, (set, frozenset)):
        assert a == b
    elif a.__class__.__module__.startswith("repro."):
        # Plain repro objects without value equality (schema, space):
        # compare cheap deterministic structural probes instead.
        _assert_probes_equal(a, b)
    else:
        assert a == b
        assert repr(a) == repr(b)


def _assert_probes_equal(a, b):
    from repro.chunks.grid import ChunkSpace
    from repro.schema.star import StarSchema

    if isinstance(a, StarSchema):
        assert [d.name for d in a.dimensions] == [
            d.name for d in b.dimensions
        ]
        assert [d.leaf_level for d in a.dimensions] == [
            d.leaf_level for d in b.dimensions
        ]
        assert [m.name for m in a.measures] == [
            m.name for m in b.measures
        ]
    elif isinstance(a, ChunkSpace):
        base = tuple(d.leaf_level for d in a.schema.dimensions)
        assert a.grid(base).num_chunks == b.grid(base).num_chunks
        assert a.grid(base).shape == b.grid(base).shape
    else:  # pragma: no cover - extend probes when a new type appears
        raise AssertionError(
            f"no structural probe for {type(a).__name__}"
        )


def _round_trip(obj):
    clone = pickle.loads(pickle.dumps(obj))
    _assert_equal(obj, clone)
    return clone


# ---------------------------------------------------------------------------
# The gate
# ---------------------------------------------------------------------------


def _boundary_frozen_classes():
    found = set()
    for module in BOUNDARY_MODULES:
        for name in dir(module):
            obj = getattr(module, name)
            if (
                isinstance(obj, type)
                and dataclasses.is_dataclass(obj)
                and obj.__dataclass_params__.frozen
                and obj.__module__ == module.__name__
            ):
                found.add(obj)
    return found


class TestManifestCompleteness:
    def test_every_boundary_frozen_dataclass_has_a_strategy(self):
        missing = _boundary_frozen_classes() - set(MANIFEST)
        names = sorted(cls.__qualname__ for cls in missing)
        assert not missing, (
            "frozen boundary value objects without a pickle round-trip "
            f"strategy in MANIFEST: {names}"
        )

    def test_manifest_classes_are_frozen(self):
        for cls in MANIFEST:
            assert dataclasses.is_dataclass(cls), cls
            assert cls.__dataclass_params__.frozen, (
                f"{cls.__qualname__} crossed the boundary but is not "
                "frozen"
            )


@pytest.mark.parametrize(
    "cls", sorted(MANIFEST, key=lambda c: c.__qualname__),
    ids=lambda c: c.__qualname__,
)
@FEW
@given(data=st.data())
def test_pickle_round_trip(cls, data):
    obj = data.draw(MANIFEST[cls])
    clone = _round_trip(obj)
    assert isinstance(clone, cls)


class TestBehaviourSurvivesPickling:
    @FEW
    @given(plan=_fault_plans, site=_names, seq=_small_ints)
    def test_fault_plan_roll_is_preserved(self, plan, site, seq):
        clone = pickle.loads(pickle.dumps(plan))
        for kind in FAULT_KINDS:
            assert clone.roll(kind, site, seq) == plan.roll(
                kind, site, seq
            )

    @FEW
    @given(analyzed=analyzed_queries())
    def test_chunk_keys_are_preserved(self, analyzed):
        clone = pickle.loads(pickle.dumps(analyzed))
        for number in analyzed.partitions:
            assert clone.chunk_key(number) == analyzed.chunk_key(
                number
            )

    def test_engine_spec_records_are_preserved(self):
        system = get_system(SMOKE_SCALE)
        spec = EngineSpec(
            schema=system.schema,
            space=system.space,
            records=system.records[:4],
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert np.array_equal(clone.records, spec.records)
        assert clone.organization == spec.organization
