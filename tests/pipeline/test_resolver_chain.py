"""Tests for the resolver chain and the staged executor.

The property test is the PR's safety net: whatever combination of
resolvers is active (derivation on/off x prefetch on/off x replacement
policy) and however small the cache, every answer must equal the
backend's direct evaluation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.core.metrics import QueryRecord
from repro.exceptions import PipelineError
from repro.pipeline.executor import StagedPipeline
from repro.pipeline.resolvers import PartitionResolver
from repro.pipeline.stages import (
    AnalyzedQuery,
    ChunkPlan,
    ResolvedPart,
    Resolution,
    ResolverOutcome,
)
from repro.query.model import StarQuery
from tests.conftest import canon_rows

# ----------------------------------------------------------------------
# Property: any resolver combination answers exactly
# ----------------------------------------------------------------------

#: Level cardinalities of the small schema: D0 (5, 10), D1 (4, 8).
_CARDS = {0: (1, 1), 1: (5, 4), 2: (10, 8)}


def _selection(draw, level, card):
    if level == 0 or draw(st.booleans()):
        return None
    lo = draw(st.integers(0, card - 1))
    hi = draw(st.integers(lo + 1, card))
    return (lo, hi)


@st.composite
def _queries(draw):
    g0 = draw(st.integers(0, 2))
    g1 = draw(st.integers(0, 2))
    selections = {}
    s0 = _selection(draw, g0, _CARDS[g0][0])
    if s0 is not None:
        selections["D0"] = s0
    s1 = _selection(draw, g1, _CARDS[g1][1])
    if s1 is not None:
        selections["D1"] = s1
    return (g0, g1), selections


@settings(max_examples=25, deadline=None)
@given(
    stream=st.lists(_queries(), min_size=1, max_size=4),
    derive=st.booleans(),
    prefetch=st.booleans(),
    policy=st.sampled_from(["lru", "clock", "benefit"]),
    capacity=st.sampled_from([3_000, 50_000, 4_000_000]),
)
def test_any_chain_matches_backend(
    small_schema, small_engine, stream, derive, prefetch, policy, capacity
):
    manager = ChunkCacheManager(
        small_schema,
        small_engine.space,
        small_engine,
        ChunkCache(capacity, policy),
        aggregate_in_cache=derive,
        prefetch_drilldown=prefetch,
    )
    for groupby, selections in stream:
        query = StarQuery.build(small_schema, groupby, selections)
        answer = manager.answer(query)
        expected, _ = small_engine.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)
        record = answer.record
        assert (
            record.chunks_hit + record.chunks_derived
            <= record.chunks_total
        )
        assert record.saved_cost <= record.full_cost + 1e-9
        resolved = sum(answer.trace.resolved_by.values())
        assert resolved == record.chunks_total


# ----------------------------------------------------------------------
# Executor contract
# ----------------------------------------------------------------------


class _StubAnalyzer:
    def __init__(self, partitions):
        self.partitions = partitions

    def analyze(self, query):
        return AnalyzedQuery.from_query(query, self.partitions)


class _StubResolver(PartitionResolver):
    def __init__(self, name, resolves, extra=()):
        self.name = name
        self._resolves = resolves
        self._extra = extra

    def resolve(self, analyzed, outstanding):
        parts = {
            n: ResolvedPart(number=n, rows=np.zeros(0), resolver=self.name)
            for n in list(outstanding) + list(self._extra)
            if n in self._resolves or n in self._extra
        }
        return ResolverOutcome(parts=parts)


class _StubAssembler:
    def assemble(self, analyzed, resolution):
        return np.zeros(0)


class _StubAccountant:
    def account(self, analyzed, resolution, plan, result_rows):
        return QueryRecord(
            time=0.0, full_cost=0.0, saved_cost=0.0,
            chunks_total=len(analyzed.partitions),
            chunks_hit=len(plan.present),
        )


def _pipeline(resolvers, partitions=(0, 1)):
    return StagedPipeline(
        analyzer=_StubAnalyzer(partitions),
        resolvers=resolvers,
        assembler=_StubAssembler(),
        accountant=_StubAccountant(),
    )


class TestExecutorContract:
    def test_empty_chain_rejected(self):
        with pytest.raises(PipelineError):
            _pipeline([])

    def test_unresolved_partitions_raise(self, small_schema):
        pipeline = _pipeline([_StubResolver("partial", {0})])
        query = StarQuery.build(small_schema, (1, 1))
        with pytest.raises(PipelineError, match="unresolved"):
            pipeline.execute(query)

    def test_unoffered_partition_raises(self, small_schema):
        rogue = _StubResolver("rogue", {0}, extra=(99,))
        pipeline = _pipeline([rogue])
        query = StarQuery.build(small_schema, (1, 1))
        with pytest.raises(PipelineError, match="not offered"):
            pipeline.execute(query)

    def test_later_links_get_leftovers_only(self, small_schema):
        first = _StubResolver("cache", {0})
        second = _StubResolver("backend", {0, 1})
        pipeline = _pipeline([first, second])
        result = pipeline.execute(StarQuery.build(small_schema, (1, 1)))
        assert result.resolution.parts[0].resolver == "cache"
        assert result.resolution.parts[1].resolver == "backend"
        assert result.trace.resolved_by == {"cache": 1, "backend": 1}

    def test_plan_classification(self, small_schema):
        chain = [
            _StubResolver("cache", {0}),
            _StubResolver("derive", {1}),
            _StubResolver("backend", {2}),
        ]
        pipeline = _pipeline(chain, partitions=(0, 1, 2))
        result = pipeline.execute(StarQuery.build(small_schema, (1, 1)))
        assert result.plan.present == (0,)
        assert result.plan.derived == (1,)
        assert result.plan.missing == (2,)

    def test_skips_resolvers_when_nothing_outstanding(self, small_schema):
        first = _StubResolver("cache", {0, 1})
        never = _StubResolver("backend", {0, 1})
        pipeline = _pipeline([first, never])
        result = pipeline.execute(StarQuery.build(small_schema, (1, 1)))
        # The backend link never ran: no stage trace, no attribution.
        assert result.trace.stage("resolve:backend") is None
        assert result.trace.resolved_by == {"cache": 2}
