"""Tests for batched, memoized chunk-work estimation."""

import pytest

from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.pipeline.work import ChunkWorkEstimator
from repro.query.model import StarQuery


class _CountingBackend:
    """Counts estimation probes, delegating everything else."""

    def __init__(self, engine):
        self._engine = engine
        self.single_calls = 0
        self.batch_calls = 0

    def estimate_chunk_work(self, groupby, numbers):
        self.single_calls += 1
        return self._engine.estimate_chunk_work(groupby, numbers)

    def estimate_chunk_work_batch(self, groupby, numbers):
        self.batch_calls += 1
        return self._engine.estimate_chunk_work_batch(groupby, numbers)

    def __getattr__(self, name):
        return getattr(self._engine, name)


@pytest.fixture()
def counting(fresh_small_engine):
    return _CountingBackend(fresh_small_engine)


@pytest.fixture()
def manager(small_schema, fresh_small_engine, counting):
    return ChunkCacheManager(
        small_schema,
        fresh_small_engine.space,
        counting,
        ChunkCache(4_000_000),
    )


class TestBatchParity:
    def test_batch_matches_per_chunk_probes(self, small_engine):
        """Each chunk in a batch is priced exactly as a lone probe."""
        groupby = (1, 1)
        grid = small_engine.space.grid(groupby)
        numbers = list(range(grid.num_chunks))
        batch = small_engine.estimate_chunk_work_batch(groupby, numbers)
        assert sorted(batch) == numbers
        for number in numbers:
            assert batch[number] == small_engine.estimate_chunk_work(
                groupby, [number]
            )

    def test_batch_of_one(self, small_engine):
        batch = small_engine.estimate_chunk_work_batch((1, 0), [0])
        assert batch[0] == small_engine.estimate_chunk_work((1, 0), [0])


class TestEstimatorMemo:
    def test_one_backend_call_for_missing(self, counting):
        estimator = ChunkWorkEstimator(counting)
        work = estimator.ensure((1, 1), [0, 1, 2])
        assert counting.batch_calls == 1
        assert sorted(work) == [0, 1, 2]

    def test_warm_lookup_is_free(self, counting):
        estimator = ChunkWorkEstimator(counting)
        estimator.ensure((1, 1), [0, 1, 2])
        estimator.ensure((1, 1), [1, 2])
        estimator.work((1, 1), 0)
        assert counting.batch_calls == 1

    def test_partial_overlap_fetches_only_missing(self, counting):
        estimator = ChunkWorkEstimator(counting)
        estimator.ensure((1, 1), [0, 1])
        estimator.ensure((1, 1), [1, 2, 3])
        assert counting.batch_calls == 2
        assert len(estimator) == 4

    def test_clear_forgets(self, counting):
        estimator = ChunkWorkEstimator(counting)
        estimator.ensure((1, 1), [0])
        estimator.clear()
        assert len(estimator) == 0
        estimator.ensure((1, 1), [0])
        assert counting.batch_calls == 2


class TestManagerProbeBudget:
    def test_one_probe_per_cold_query(self, small_schema, manager, counting):
        """Analysis batches the whole query's estimation into one call;
        admission and accounting run off the memo."""
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        answer = manager.answer(query)
        assert answer.record.chunks_total > 1
        assert counting.batch_calls == 1
        assert counting.single_calls == 0

    def test_no_probe_when_warm(self, small_schema, manager, counting):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        manager.answer(query)
        counting.batch_calls = 0
        manager.answer(query)
        assert counting.batch_calls == 0
        assert counting.single_calls == 0

    def test_overlapping_query_fetches_only_new_chunks(
        self, small_schema, manager, counting
    ):
        manager.answer(
            StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        )
        counting.batch_calls = 0
        manager.answer(
            StarQuery.build(small_schema, (1, 1), {"D0": (0, 5)})
        )
        assert counting.batch_calls <= 1

    def test_invalidation_clears_memo(self, small_schema, manager, counting):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        manager.answer(query)
        manager.estimator.clear()
        counting.batch_calls = 0
        manager.answer(query)
        assert counting.batch_calls == 1
