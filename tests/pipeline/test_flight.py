"""Unit tests for single-flight chunk coalescing (the FlightTable).

The front-door integration tests (``tests/serve/test_front.py``) pin
the end-to-end contracts; these tests pin the table's own mechanics:
window planning, masking, fair-share accounting summing to zero, fault
cloning, the claim-failure-first rule, and the ``coalesce=False``
baseline staying inert.
"""

import pytest

from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.exceptions import BackendFault, DiskFault, InjectedFault
from repro.pipeline.flight import FlightResolver, FlightTable, clone_fault
from repro.query.model import StarQuery


@pytest.fixture()
def manager(small_schema, small_engine):
    return ChunkCacheManager(
        small_schema,
        small_engine.space,
        small_engine,
        ChunkCache(1 << 20, "benefit"),
    )


@pytest.fixture()
def table(manager):
    return FlightTable(manager.cost_model, manager.estimator)


def _analyzed(manager, small_schema, groupby=(1, 1), selections=None):
    query = StarQuery.build(small_schema, groupby, selections or {})
    return manager.pipeline.analyzer.analyze(query)


def _fetch(manager, analyzed):
    """The leader's backend fetch: computed rows plus its cost report."""
    computed, report = manager.backend.compute_chunks(  # reprolint: ignore[R001] unit-test fetch
        analyzed.groupby,
        list(analyzed.partitions),
        analyzed.aggregates,
    )
    return computed, report


class TestPlanning:
    def test_duplicates_become_flights(self, manager, table, small_schema):
        analyzed = _analyzed(manager, small_schema)
        count = table.plan_window(
            manager.cache, [(0, analyzed), (1, analyzed)]
        )
        assert count == len(analyzed.partitions) > 0

    def test_singletons_and_cached_chunks_do_not(
        self, manager, table, small_schema
    ):
        analyzed = _analyzed(manager, small_schema)
        assert table.plan_window(manager.cache, [(0, analyzed)]) == 0
        # Warm the cache, then re-plan a duplicate window: nothing is
        # missing, so nothing coalesces.
        manager.answer(analyzed.query)
        assert (
            table.plan_window(
                manager.cache, [(1, analyzed), (2, analyzed)]
            )
            == 0
        )

    def test_masking_is_scoped_to_requesters(
        self, manager, table, small_schema
    ):
        analyzed = _analyzed(manager, small_schema)
        table.plan_window(manager.cache, [(0, analyzed), (1, analyzed)])
        outstanding = list(analyzed.partitions)
        # No bracket -> inert.
        assert table.masked(analyzed, outstanding) == frozenset()
        table.begin(0)
        assert table.masked(analyzed, outstanding) == set(outstanding)
        table.end()
        # A query outside the window is never masked.
        table.begin(7)
        assert table.masked(analyzed, outstanding) == frozenset()
        table.end()


class TestPublishAndClaim:
    def test_waiter_claims_published_rows_at_fair_share(
        self, manager, table, small_schema
    ):
        analyzed = _analyzed(manager, small_schema)
        table.plan_window(manager.cache, [(0, analyzed), (1, analyzed)])
        computed, report = _fetch(manager, analyzed)

        table.begin(0)
        credit = table.publish(analyzed, computed, report)
        table.end()
        assert credit < 0.0
        assert table.flights == len(computed)

        table.begin(1)
        parts, charge = table.claim(
            analyzed, list(analyzed.partitions)
        )
        table.end()
        assert set(parts) == set(analyzed.partitions)
        assert all(p.resolver == "flight" for p in parts.values())
        # Fair share: the waiters' charges exactly cancel the
        # publisher's credit, so coalescing never changes total
        # modelled time.
        assert charge == pytest.approx(-credit)
        assert table.coalesced_chunks == len(computed)
        assert table.shared_pages > 0

    def test_claim_is_idempotent_per_requester(
        self, manager, table, small_schema
    ):
        analyzed = _analyzed(manager, small_schema)
        table.plan_window(manager.cache, [(0, analyzed), (1, analyzed)])
        computed, report = _fetch(manager, analyzed)
        table.begin(0)
        table.publish(analyzed, computed, report)
        table.end()
        table.begin(1)
        first, _ = table.claim(analyzed, list(analyzed.partitions))
        second, charge = table.claim(
            analyzed, list(analyzed.partitions)
        )
        table.end()
        assert first and second == {} and charge == 0.0

    def test_resolver_wraps_claims_in_an_outcome(
        self, manager, table, small_schema
    ):
        analyzed = _analyzed(manager, small_schema)
        table.plan_window(manager.cache, [(0, analyzed), (1, analyzed)])
        computed, report = _fetch(manager, analyzed)
        table.begin(0)
        table.publish(analyzed, computed, report)
        table.end()
        resolver = FlightResolver(table)
        table.begin(1)
        outcome = resolver.resolve(analyzed, list(analyzed.partitions))
        table.end()
        assert outcome.report is not None
        assert outcome.report.access_path == "flight"
        assert outcome.report.coalesce_time > 0.0
        # A non-requester gets an empty outcome.
        table.begin(9)
        assert not resolver.resolve(
            analyzed, list(analyzed.partitions)
        ).parts
        table.end()


class TestFaults:
    def test_clone_preserves_type_and_metadata_but_not_cost(self):
        for fault in (
            DiskFault("boom", page_id=7, transient=True, site="disk.read"),
            BackendFault("bang", operation="answer", transient=False),
            InjectedFault("generic", transient=True, site="x"),
        ):
            fault.source_level = "aggregate"
            fault.cost_report = object()
            clone = clone_fault(fault)
            assert type(clone) is type(fault)
            assert str(clone) == str(fault)
            assert clone.transient == fault.transient
            assert clone.site == fault.site
            assert clone.source_level == fault.source_level
            assert clone.cost_report is None
        assert clone_fault(
            DiskFault("b", page_id=7, transient=True)
        ).page_id == 7

    def test_failed_flight_raises_before_any_claim(
        self, manager, table, small_schema
    ):
        analyzed = _analyzed(manager, small_schema)
        table.plan_window(manager.cache, [(0, analyzed), (1, analyzed)])
        fault = DiskFault("boom", page_id=3, transient=True)
        table.begin(0)
        table.publish_failure(analyzed, analyzed.partitions, fault)
        table.end()
        table.begin(1)
        with pytest.raises(DiskFault) as exc_info:
            table.claim(analyzed, list(analyzed.partitions))
        table.end()
        assert exc_info.value is not fault
        assert exc_info.value.page_id == 3
        # Nothing was half-claimed and no sharing was counted.
        assert table.coalesced_chunks == 0 and table.shared_pages == 0


class TestBaselineAndReset:
    def test_no_coalesce_masks_but_never_serves(
        self, manager, small_schema
    ):
        table = FlightTable(
            manager.cost_model, manager.estimator, coalesce=False
        )
        analyzed = _analyzed(manager, small_schema)
        table.plan_window(manager.cache, [(0, analyzed), (1, analyzed)])
        outstanding = list(analyzed.partitions)
        table.begin(0)
        # The baseline still masks (forcing a physical refetch)...
        assert table.masked(analyzed, outstanding) == set(outstanding)
        # ...but publishing is inert, so waiters claim nothing.
        computed, report = _fetch(manager, analyzed)
        assert table.publish(analyzed, computed, report) == 0.0
        table.end()
        table.begin(1)
        assert table.claim(analyzed, outstanding) == ({}, 0.0)
        table.end()
        assert table.stats() == {
            "flights": 0, "coalesced_chunks": 0, "shared_pages": 0
        }

    def test_reset_clears_counters_and_entries(
        self, manager, table, small_schema
    ):
        analyzed = _analyzed(manager, small_schema)
        table.plan_window(manager.cache, [(0, analyzed), (1, analyzed)])
        computed, report = _fetch(manager, analyzed)
        table.begin(0)
        table.publish(analyzed, computed, report)
        table.end()
        table.begin(1)
        table.claim(analyzed, list(analyzed.partitions))
        table.end()
        assert table.flights > 0
        table.reset()
        assert table.stats() == {
            "flights": 0, "coalesced_chunks": 0, "shared_pages": 0
        }
        table.begin(1)
        assert table.claim(analyzed, list(analyzed.partitions)) == (
            {},
            0.0,
        )
        table.end()
