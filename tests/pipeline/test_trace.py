"""Tests for per-stage execution traces and their aggregation."""

import pytest

from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.core.query_cache import QueryCacheManager
from repro.pipeline.trace import (
    ExecutionTrace,
    StageTimer,
    StageTrace,
    aggregate_resolver_attribution,
    aggregate_stage_traces,
)
from repro.query.model import StarQuery


@pytest.fixture()
def manager(small_schema, fresh_small_engine):
    return ChunkCacheManager(
        small_schema,
        fresh_small_engine.space,
        fresh_small_engine,
        ChunkCache(4_000_000),
    )


class TestStageTimer:
    def test_appends_named_stage(self):
        trace = ExecutionTrace()
        with StageTimer(trace, "analyze") as stage:
            stage.partitions = 4
        assert [s.name for s in trace.stages] == ["analyze"]
        assert trace.stages[0].partitions == 4
        assert trace.stages[0].wall_seconds >= 0.0

    def test_wall_seconds_sums_stages(self):
        trace = ExecutionTrace()
        trace.stages.append(StageTrace("a", wall_seconds=1.0))
        trace.stages.append(StageTrace("b", wall_seconds=2.0))
        assert trace.wall_seconds == pytest.approx(3.0)

    def test_stage_lookup(self):
        trace = ExecutionTrace()
        trace.stages.append(StageTrace("resolve:cache", partitions=3))
        assert trace.stage("resolve:cache").partitions == 3
        assert trace.stage("missing") is None


class TestAnswerTrace:
    def test_every_answer_carries_trace(self, small_schema, manager):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        answer = manager.answer(query)
        trace = answer.trace
        assert trace is not None
        names = [s.name for s in trace.stages]
        assert names == [
            "analyze", "resolve:cache", "resolve:backend",
            "assemble", "account",
        ]
        assert trace.partitions_total == answer.record.chunks_total
        assert trace.resolved_by == {
            "cache": 0,
            "backend": answer.record.chunks_total,
        }
        assert trace.backend_pages == answer.record.pages_read
        assert trace.modelled_time == pytest.approx(answer.record.time)

    def test_repeat_query_attributed_to_cache(self, small_schema, manager):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        manager.answer(query)
        answer = manager.answer(query)
        trace = answer.trace
        assert trace.resolved_by["cache"] == answer.record.chunks_total
        # The terminal resolver never ran: nothing was outstanding.
        assert trace.stage("resolve:backend") is None
        assert trace.backend_pages == 0

    def test_query_cache_trace(self, small_schema, fresh_small_engine):
        manager = QueryCacheManager(
            small_schema, fresh_small_engine, 4_000_000
        )
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        miss = manager.answer(query)
        assert miss.trace.resolved_by == {"cache": 0, "backend": 1}
        hit = manager.answer(query)
        assert hit.trace.resolved_by == {"cache": 1}
        assert hit.trace.backend_pages == 0


class TestStreamAggregation:
    def test_metrics_aggregate_traces(self, small_schema, manager):
        queries = [
            StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)}),
            StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)}),
            StarQuery.build(small_schema, (1, 0), {"D0": (2, 5)}),
        ]
        for query in queries:
            manager.answer(query)
        stages = manager.metrics.stage_summary()
        assert stages["analyze"]["calls"] == 3
        assert stages["resolve:cache"]["calls"] == 3
        # Query 2 was a full hit; only queries 1 and 3 hit the backend.
        assert stages["resolve:backend"]["calls"] == 2
        assert stages["resolve:backend"]["pages_read"] > 0
        resolved = manager.metrics.resolver_summary()
        total = sum(r.chunks_total for r in manager.metrics.records)
        assert resolved["cache"] + resolved["backend"] == total

    def test_describe_cache_includes_trace_aggregates(
        self, small_schema, manager
    ):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        manager.answer(query)
        snapshot = manager.describe_cache()
        assert "stages" in snapshot and "resolved_by" in snapshot
        assert snapshot["resolved_by"]["backend"] > 0
        assert snapshot["stages"]["analyze"]["calls"] == 1

    def test_aggregation_helpers_match_metrics(self, small_schema, manager):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        manager.answer(query)
        manager.answer(query)
        traces = manager.metrics.traces
        assert aggregate_stage_traces(traces) == (
            manager.metrics.stage_summary()
        )
        assert aggregate_resolver_attribution(traces) == (
            manager.metrics.resolver_summary()
        )
