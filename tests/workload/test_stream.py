"""Tests for repro.workload.stream."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ExperimentError
from repro.workload.generator import EQPR
from repro.workload.stream import QueryStream, make_stream


class TestQueryStream:
    def test_container_protocol(self, small_schema):
        stream = make_stream(small_schema, EQPR, 10, seed=1)
        assert len(stream) == 10
        assert stream[0] is stream.queries[0]
        assert list(iter(stream)) == list(stream.queries)

    def test_labels(self, small_schema):
        stream = make_stream(small_schema, EQPR, 5, seed=1)
        assert stream.name == "EQPR"
        assert stream.mix is EQPR
        assert stream.seed == 1

    def test_deterministic(self, small_schema):
        a = make_stream(small_schema, EQPR, 10, seed=2)
        b = make_stream(small_schema, EQPR, 10, seed=2)
        assert a.queries == b.queries

    def test_generator_kwargs_forwarded(self, small_schema):
        stream = make_stream(
            small_schema, EQPR, 20, seed=3, max_grouped_dims=1
        )
        for query in stream:
            assert sum(1 for level in query.groupby if level > 0) == 1

    def test_empty_rejected(self, small_schema):
        with pytest.raises(ExperimentError):
            make_stream(small_schema, EQPR, 0)


class TestInterleave:
    def test_round_robin_order(self, small_schema):
        from repro.workload.stream import interleave_streams

        a = make_stream(small_schema, EQPR, 3, seed=1)
        b = make_stream(small_schema, EQPR, 3, seed=2)
        combined = interleave_streams("both", [a, b])
        assert len(combined) == 6
        assert combined[0] == a[0]
        assert combined[1] == b[0]
        assert combined[2] == a[1]

    def test_uneven_lengths_drain(self, small_schema):
        from repro.workload.stream import interleave_streams

        a = make_stream(small_schema, EQPR, 4, seed=1)
        b = make_stream(small_schema, EQPR, 1, seed=2)
        combined = interleave_streams("both", [a, b])
        assert len(combined) == 5
        assert combined[4] == a[3]

    def test_empty_rejected(self):
        from repro.workload.stream import interleave_streams

        with pytest.raises(ExperimentError):
            interleave_streams("none", [])


class TestInterleaveProperties:
    """Hypothesis checks of the canonical order the serving layer pins.

    The fair schedule in :mod:`repro.serve` replays exactly this
    interleave, so its fairness and completeness are load-bearing for
    the concurrency determinism contract, not just for reporting.
    """

    @staticmethod
    def label_streams(lengths):
        """Streams of distinguishable (stream, position) tokens."""
        return [
            QueryStream(
                name=f"s{index}",
                queries=tuple(
                    (index, position) for position in range(length)
                ),
            )
            for index, length in enumerate(lengths)
        ]

    @given(st.lists(st.integers(min_value=0, max_value=12), min_size=1,
                    max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_matches_round_robin_reference(self, lengths):
        from itertools import zip_longest

        from repro.workload.stream import interleave_streams

        streams = self.label_streams(lengths)
        combined = interleave_streams("all", streams)
        sentinel = object()
        expected = [
            query
            for round_ in zip_longest(*streams, fillvalue=sentinel)
            for query in round_
            if query is not sentinel
        ]
        assert list(combined) == expected

    @given(st.lists(st.integers(min_value=0, max_value=12), min_size=1,
                    max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_output_multiset_is_union_of_inputs(self, lengths):
        from collections import Counter

        from repro.workload.stream import interleave_streams

        streams = self.label_streams(lengths)
        combined = interleave_streams("all", streams)
        assert Counter(combined) == Counter(
            query for stream in streams for query in stream
        )
        assert len(combined) == sum(lengths)

    @given(st.lists(st.integers(min_value=0, max_value=12), min_size=2,
                    max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_round_robin_fairness(self, lengths):
        """In every prefix, no unexhausted stream falls more than one
        query behind any other — the round-robin fairness invariant."""
        from repro.workload.stream import interleave_streams

        streams = self.label_streams(lengths)
        combined = interleave_streams("all", streams)
        taken = [0] * len(streams)
        for stream_index, _ in combined:
            taken[stream_index] += 1
            active = [
                count
                for count, length in zip(taken, lengths)
                if count < length
            ]
            if active:
                assert max(active) - min(active) <= 1

    @given(st.lists(st.integers(min_value=0, max_value=12), min_size=1,
                    max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_each_stream_stays_in_order(self, lengths):
        from repro.workload.stream import interleave_streams

        streams = self.label_streams(lengths)
        combined = interleave_streams("all", streams)
        for index, length in enumerate(lengths):
            positions = [
                position
                for stream_index, position in combined
                if stream_index == index
            ]
            assert positions == list(range(length))
