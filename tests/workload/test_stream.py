"""Tests for repro.workload.stream."""

import pytest

from repro.exceptions import ExperimentError
from repro.workload.generator import EQPR
from repro.workload.stream import QueryStream, make_stream


class TestQueryStream:
    def test_container_protocol(self, small_schema):
        stream = make_stream(small_schema, EQPR, 10, seed=1)
        assert len(stream) == 10
        assert stream[0] is stream.queries[0]
        assert list(iter(stream)) == list(stream.queries)

    def test_labels(self, small_schema):
        stream = make_stream(small_schema, EQPR, 5, seed=1)
        assert stream.name == "EQPR"
        assert stream.mix is EQPR
        assert stream.seed == 1

    def test_deterministic(self, small_schema):
        a = make_stream(small_schema, EQPR, 10, seed=2)
        b = make_stream(small_schema, EQPR, 10, seed=2)
        assert a.queries == b.queries

    def test_generator_kwargs_forwarded(self, small_schema):
        stream = make_stream(
            small_schema, EQPR, 20, seed=3, max_grouped_dims=1
        )
        for query in stream:
            assert sum(1 for level in query.groupby if level > 0) == 1

    def test_empty_rejected(self, small_schema):
        with pytest.raises(ExperimentError):
            make_stream(small_schema, EQPR, 0)


class TestInterleave:
    def test_round_robin_order(self, small_schema):
        from repro.workload.stream import interleave_streams

        a = make_stream(small_schema, EQPR, 3, seed=1)
        b = make_stream(small_schema, EQPR, 3, seed=2)
        combined = interleave_streams("both", [a, b])
        assert len(combined) == 6
        assert combined[0] == a[0]
        assert combined[1] == b[0]
        assert combined[2] == a[1]

    def test_uneven_lengths_drain(self, small_schema):
        from repro.workload.stream import interleave_streams

        a = make_stream(small_schema, EQPR, 4, seed=1)
        b = make_stream(small_schema, EQPR, 1, seed=2)
        combined = interleave_streams("both", [a, b])
        assert len(combined) == 5
        assert combined[4] == a[3]

    def test_empty_rejected(self):
        from repro.workload.stream import interleave_streams

        with pytest.raises(ExperimentError):
            interleave_streams("none", [])
