"""Tests for repro.workload.data."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.workload.data import generate_dense_table, generate_fact_table


class TestGenerateFactTable:
    def test_shape_and_ranges(self, small_schema):
        records = generate_fact_table(small_schema, 1000, seed=1)
        assert len(records) == 1000
        for dim in small_schema.dimensions:
            column = records[dim.name]
            assert column.min() >= 0
            assert column.max() < dim.leaf_cardinality
        assert records["v"].min() >= 0.0
        assert records["v"].max() < 100.0

    def test_deterministic(self, small_schema):
        a = generate_fact_table(small_schema, 100, seed=5)
        b = generate_fact_table(small_schema, 100, seed=5)
        assert np.array_equal(a, b)

    def test_seed_changes_data(self, small_schema):
        a = generate_fact_table(small_schema, 100, seed=5)
        b = generate_fact_table(small_schema, 100, seed=6)
        assert not np.array_equal(a, b)

    def test_zero_tuples(self, small_schema):
        assert len(generate_fact_table(small_schema, 0)) == 0

    def test_negative_rejected(self, small_schema):
        with pytest.raises(ExperimentError):
            generate_fact_table(small_schema, -1)

    def test_measure_bounds(self, small_schema):
        records = generate_fact_table(
            small_schema, 100, seed=2, measure_low=5.0, measure_high=6.0
        )
        assert records["v"].min() >= 5.0
        assert records["v"].max() < 6.0


class TestGenerateDenseTable:
    def test_density_controls_distinct_cells(self, small_schema):
        records = generate_dense_table(small_schema, density=0.5, seed=3)
        cells = {
            (int(a), int(b)) for a, b in zip(records["D0"], records["D1"])
        }
        total = 10 * 8
        assert len(cells) == round(0.5 * total)

    def test_tuples_per_cell(self, small_schema):
        records = generate_dense_table(
            small_schema, density=0.25, tuples_per_cell=3, seed=3
        )
        total = 10 * 8
        assert len(records) == round(0.25 * total) * 3

    def test_full_density_covers_everything(self, small_schema):
        records = generate_dense_table(small_schema, density=1.0, seed=0)
        cells = {
            (int(a), int(b)) for a, b in zip(records["D0"], records["D1"])
        }
        assert len(cells) == 80

    def test_random_order(self, small_schema):
        """The emitted order must not be clustered (it feeds heap files)."""
        records = generate_dense_table(small_schema, density=1.0, seed=1)
        keys = records["D0"].astype(np.int64) * 8 + records["D1"]
        assert not np.all(np.diff(keys) >= 0)

    def test_bad_density_rejected(self, small_schema):
        with pytest.raises(ExperimentError):
            generate_dense_table(small_schema, density=0.0)
        with pytest.raises(ExperimentError):
            generate_dense_table(small_schema, density=1.5)

    def test_bad_tuples_per_cell_rejected(self, small_schema):
        with pytest.raises(ExperimentError):
            generate_dense_table(small_schema, 0.5, tuples_per_cell=0)

    def test_deterministic(self, small_schema):
        a = generate_dense_table(small_schema, 0.3, seed=4)
        b = generate_dense_table(small_schema, 0.3, seed=4)
        assert np.array_equal(a, b)
