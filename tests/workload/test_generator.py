"""Tests for repro.workload.generator — the locality query generator."""

import pytest

from repro.exceptions import ExperimentError
from repro.workload.generator import (
    EQPR,
    PROXIMITY,
    Q60,
    Q80,
    Q100,
    RANDOM,
    LocalityMix,
    QueryGenerator,
)


class TestLocalityMix:
    def test_presets_match_table2(self):
        assert (RANDOM.proximity, RANDOM.random) == (0.0, 1.0)
        assert (EQPR.proximity, EQPR.random) == (0.5, 0.5)
        assert (PROXIMITY.proximity, PROXIMITY.random) == pytest.approx(
            (0.8, 0.2)
        )

    def test_hot_presets(self):
        assert Q60.hot == 0.6
        assert Q80.hot == 0.8
        assert Q100.hot == 1.0

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ExperimentError):
            LocalityMix(proximity=1.5)
        with pytest.raises(ExperimentError):
            LocalityMix(proximity=0.7, hot=0.7)


class TestRandomQuery:
    def test_valid_queries(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=1)
        for _ in range(200):
            query = generator.random_query()
            paper_schema.validate_groupby(query.groupby)
            grouped = [level for level in query.groupby if level > 0]
            assert 1 <= len(grouped) <= 3
            for dim, level, interval in zip(
                paper_schema.dimensions, query.groupby, query.selections
            ):
                if interval is None:
                    continue
                assert level > 0
                assert 0 <= interval[0] < interval[1] <= dim.cardinality(level)

    def test_deterministic(self, paper_schema):
        a = QueryGenerator(paper_schema, seed=9).stream(20, RANDOM)
        b = QueryGenerator(paper_schema, seed=9).stream(20, RANDOM)
        assert a == b

    def test_max_grouped_dims_respected(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=2, max_grouped_dims=1)
        for _ in range(50):
            query = generator.random_query()
            assert sum(1 for level in query.groupby if level > 0) == 1


class TestHotQueries:
    def test_hot_selections_inside_region(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=3)
        for _ in range(100):
            query = generator.hot_query()
            for pos, (dim, level, interval) in enumerate(
                zip(paper_schema.dimensions, query.groupby, query.selections)
            ):
                if level == 0:
                    continue
                assert interval is not None, "hot queries always select"
                hot_lo, hot_hi = generator.hot_leaf_intervals[pos]
                leaf = dim.map_range(level, interval, dim.leaf_level)
                # Either inside the region, or the single-member fallback.
                inside = hot_lo <= leaf[0] and leaf[1] <= hot_hi
                single = interval[1] - interval[0] == 1
                assert inside or single

    def test_region_size_close_to_fraction(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=4, hot_fraction=0.2)
        fraction = 1.0
        for dim, (lo, hi) in zip(
            paper_schema.dimensions, generator.hot_leaf_intervals
        ):
            fraction *= (hi - lo) / dim.leaf_cardinality
        assert fraction == pytest.approx(0.2, rel=0.35)


class TestProximityQueries:
    def test_same_groupby_shifted_selection(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=5)
        previous = generator.random_query()
        while all(s is None for s in previous.selections):
            previous = generator.random_query()
        query = generator.proximity_query(previous)
        assert query.groupby == previous.groupby
        for (a, b) in zip(query.selections, previous.selections):
            if b is None:
                assert a is None
            else:
                assert a is not None
                assert (a[1] - a[0]) == (b[1] - b[0])  # width preserved

    def test_no_previous_falls_back_to_random(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=6)
        query = generator.proximity_query()
        paper_schema.validate_groupby(query.groupby)

    def test_clamped_to_domain(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=7)
        query = generator.random_query()
        for _ in range(50):
            query = generator.proximity_query(query)
            for dim, level, interval in zip(
                paper_schema.dimensions, query.groupby, query.selections
            ):
                if interval is None:
                    continue
                assert 0 <= interval[0] < interval[1] <= dim.cardinality(level)


class TestStreams:
    def test_length(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=8)
        assert len(generator.stream(37, EQPR)) == 37

    def test_negative_length_rejected(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=8)
        with pytest.raises(ExperimentError):
            generator.stream(-1, EQPR)

    def test_bad_parameters_rejected(self, paper_schema):
        with pytest.raises(ExperimentError):
            QueryGenerator(paper_schema, hot_fraction=0.0)
        with pytest.raises(ExperimentError):
            QueryGenerator(paper_schema, select_probability=1.5)
        with pytest.raises(ExperimentError):
            QueryGenerator(paper_schema, width_fractions=(0.5, 0.1))
        with pytest.raises(ExperimentError):
            QueryGenerator(paper_schema, max_grouped_dims=0)

    def test_all_queries_share_aggregates(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=9)
        stream = generator.stream(30, EQPR)
        assert len({q.aggregates for q in stream}) == 1


class TestDrillQueries:
    def test_drill_changes_one_level(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=11)
        previous = generator.random_query()
        query = generator.drill_query(previous)
        diffs = [
            (a, b)
            for a, b in zip(previous.groupby, query.groupby)
            if a != b
        ]
        assert len(diffs) == 1
        old, new = diffs[0]
        assert abs(old - new) == 1
        assert old > 0 and new > 0

    def test_drill_selection_follows_hierarchy(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=12)
        for _ in range(60):
            previous = generator.random_query()
            query = generator.drill_query(previous)
            for dim, old_level, new_level, old_sel, new_sel in zip(
                paper_schema.dimensions,
                previous.groupby,
                query.groupby,
                previous.selections,
                query.selections,
            ):
                if old_level == new_level or old_sel is None:
                    continue
                assert new_sel is not None
                old_leaf = dim.map_range(old_level, old_sel, dim.leaf_level)
                new_leaf = dim.map_range(new_level, new_sel, dim.leaf_level)
                # The new selection covers at least the old region.
                assert new_leaf[0] <= old_leaf[0]
                assert new_leaf[1] >= old_leaf[1]

    def test_no_previous_falls_back(self, paper_schema):
        generator = QueryGenerator(paper_schema, seed=13)
        query = generator.drill_query()
        paper_schema.validate_groupby(query.groupby)

    def test_session_mix_produces_valid_stream(self, paper_schema):
        from repro.workload.generator import SESSION

        generator = QueryGenerator(paper_schema, seed=14)
        stream = generator.stream(80, SESSION)
        assert len(stream) == 80
        for query in stream:
            paper_schema.validate_groupby(query.groupby)

    def test_drill_mix_validation(self):
        with pytest.raises(ExperimentError):
            LocalityMix(proximity=0.5, drill=0.6)
