"""Tests for repro.invariants — modes, checks, and subsystem wiring."""

import numpy as np
import pytest

from repro import invariants
from repro.chunks.ranges import DimensionChunking, desired_sizes_for_ratio
from repro.core.cache import ChunkCache
from repro.core.chunk import CachedChunk, ChunkKey
from repro.core.query_cache import QueryCacheManager
from repro.exceptions import InvariantViolation
from repro.pipeline.trace import ExecutionTrace, StageTrace
from repro.query.model import StarQuery
from repro.schema.builder import build_dimension


@pytest.fixture()
def deep_mode():
    previous = invariants.set_mode("deep")
    invariants.reset_counters()
    yield
    invariants.set_mode(previous)


def make_chunk(number=0, payload=8, benefit=1.0):
    key = ChunkKey((1, 1), number, (("v", "sum"),), frozenset())
    rows = np.zeros(payload, dtype=np.int64)
    return CachedChunk(key=key, rows=rows, benefit=benefit)


class TestModes:
    def test_default_is_cheap(self):
        assert invariants._resolve(None) == invariants.CHEAP
        assert invariants._resolve("on") == invariants.CHEAP

    def test_aliases(self):
        assert invariants._resolve("full") == invariants.DEEP
        assert invariants._resolve("0") == invariants.OFF
        assert invariants._resolve("OFF") == invariants.OFF

    def test_unknown_mode_rejected(self):
        with pytest.raises(InvariantViolation):
            invariants._resolve("sometimes")

    def test_set_mode_round_trip(self):
        previous = invariants.set_mode("off")
        try:
            assert not invariants.enabled()
            assert not invariants.deep()
        finally:
            invariants.set_mode(previous)

    def test_require(self):
        invariants.require(True, "fine")
        with pytest.raises(InvariantViolation, match="broken"):
            invariants.require(False, "broken")


class TestClosureCheck:
    def test_real_chunking_passes(self):
        dim = build_dimension("D", [4, 16, 64], fanout="random", seed=3)
        chunking = DimensionChunking(
            dim, desired_sizes_for_ratio(dim, 0.3)
        )
        invariants.check_closure(chunking)  # does not raise

    def test_corrupted_ranges_caught(self):
        dim = build_dimension("D", [4, 16])
        chunking = DimensionChunking(
            dim, desired_sizes_for_ratio(dim, 0.5)
        )
        # Tear a hole in the leaf level behind the class's back.
        leaf = chunking._ranges[2]
        chunking._ranges[2] = leaf[:-1]
        with pytest.raises(InvariantViolation):
            invariants.check_closure(chunking)


class TestPartitionCheck:
    @pytest.fixture()
    def analyzed_and_grid(self, small_schema, small_space):
        from repro.pipeline.stages import AnalyzedQuery

        query = StarQuery.build(small_schema, (1, 1), {"D0": (1, 4)})
        grid = small_space.grid(query.groupby)
        numbers = grid.chunk_numbers_for_selection(query.selections)
        return AnalyzedQuery.from_query(query, tuple(numbers)), grid

    def test_correct_partitions_pass(self, analyzed_and_grid):
        analyzed, grid = analyzed_and_grid
        invariants.check_partition(analyzed, grid)

    def test_missing_partition_caught(self, analyzed_and_grid):
        analyzed, grid = analyzed_and_grid
        from repro.pipeline.stages import AnalyzedQuery

        truncated = AnalyzedQuery.from_query(
            analyzed.query, analyzed.partitions[:-1]
        )
        with pytest.raises(InvariantViolation, match="count"):
            invariants.check_partition(truncated, grid)

    def test_duplicate_partition_caught(self, analyzed_and_grid):
        analyzed, grid = analyzed_and_grid
        from repro.pipeline.stages import AnalyzedQuery

        first = analyzed.partitions[0]
        doubled = AnalyzedQuery.from_query(
            analyzed.query, (first,) + analyzed.partitions[:-1]
        )
        with pytest.raises(InvariantViolation, match="ascending"):
            invariants.check_partition(doubled, grid)


class TestCacheAccountingCheck:
    def test_cheap_bounds(self):
        with pytest.raises(InvariantViolation, match="negative"):
            invariants.check_cache_accounting(-1, 100)
        with pytest.raises(InvariantViolation, match="exceeds"):
            invariants.check_cache_accounting(101, 100)

    def test_deep_byte_conservation(self):
        entry = make_chunk()
        invariants.check_cache_accounting(
            entry.size_bytes, 10**6, [entry]
        )
        with pytest.raises(InvariantViolation, match="conservation"):
            invariants.check_cache_accounting(
                entry.size_bytes + 1, 10**6, [entry]
            )

    def test_deep_benefit_validity(self):
        entry = make_chunk(benefit=float("nan"))
        with pytest.raises(InvariantViolation, match="benefit"):
            invariants.check_cache_accounting(
                entry.size_bytes, 10**6, [entry]
            )


class TestTraceConservationCheck:
    def make_pair(self, **overrides):
        from repro.core.metrics import QueryRecord

        trace = ExecutionTrace(
            stages=[StageTrace("resolve:backend", pages_read=5)],
            resolved_by={"backend": 2},
            partitions_total=2,
            backend_pages=5,
        )
        fields = dict(
            time=1.0, full_cost=2.0, saved_cost=0.0,
            chunks_total=2, chunks_hit=0, pages_read=5,
        )
        fields.update(overrides)
        return trace, QueryRecord(**fields)

    def test_conserved_pair_passes(self):
        trace, record = self.make_pair()
        invariants.check_trace_conservation(trace, record)

    def test_page_mismatch_caught(self):
        trace, record = self.make_pair(pages_read=4)
        with pytest.raises(InvariantViolation, match="pages"):
            invariants.check_trace_conservation(trace, record)

    def test_attribution_mismatch_caught(self):
        trace, record = self.make_pair()
        trace.resolved_by["backend"] = 1
        with pytest.raises(InvariantViolation, match="attribution"):
            invariants.check_trace_conservation(trace, record)

    def test_savings_above_full_cost_caught(self):
        trace, record = self.make_pair(saved_cost=3.0)
        with pytest.raises(InvariantViolation, match="saved_cost"):
            invariants.check_trace_conservation(trace, record)


class TestWiring:
    """The checks actually fire from inside the subsystems."""

    def test_chunk_cache_mutations_checked(self, deep_mode):
        cache = ChunkCache(10**6)
        entry = make_chunk()
        cache.put(entry)
        cache.invalidate(entry.key)
        assert invariants.counters()["deep"] >= 2

    def test_chunk_cache_detects_tampering(self, deep_mode):
        cache = ChunkCache(10**6)
        cache.put(make_chunk(number=0))
        cache._used_bytes += 1  # simulate an accounting bug
        with pytest.raises(InvariantViolation):
            cache.put(make_chunk(number=1))

    def test_chunking_checked_on_build(self, deep_mode):
        dim = build_dimension("D", [3, 12])
        DimensionChunking(dim, desired_sizes_for_ratio(dim, 0.4))
        assert invariants.counters()["deep"] >= 1

    def test_query_cache_checked(
        self, deep_mode, small_schema, fresh_small_engine
    ):
        manager = QueryCacheManager(
            small_schema, fresh_small_engine, capacity_bytes=2_000_000
        )
        manager.answer(StarQuery.build(small_schema, (1, 1)))
        counts = invariants.counters()
        assert counts["deep"] >= 1  # admit triggered deep accounting
        assert counts["cheap"] >= 1  # trace conservation in the executor

    def test_off_mode_skips_everything(self, small_schema):
        previous = invariants.set_mode("off")
        invariants.reset_counters()
        try:
            cache = ChunkCache(10**6)
            cache.put(make_chunk())
            assert invariants.counters() == {"cheap": 0, "deep": 0}
        finally:
            invariants.set_mode(previous)
