"""Shared fixtures: small schemas, generated data, loaded engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.schema.builder import build_star_schema
from repro.storage.record import fact_record_format
from repro.workload.data import generate_fact_table


@pytest.fixture(scope="session")
def small_schema():
    """2-D schema with hierarchies: D0 (5, 10) and D1 (4, 8)."""
    return build_star_schema(
        [[5, 10], [4, 8]], measure_names=("v",), name="small"
    )


@pytest.fixture(scope="session")
def paper_schema():
    """The Table 1 schema: 4 dimensions, hierarchy sizes 3/2/3/2."""
    return build_star_schema(
        [(25, 50, 100), (25, 50), (5, 25, 50), (10, 50)],
        measure_names=("sales",),
        name="table1",
    )


@pytest.fixture(scope="session")
def small_space(small_schema):
    """Chunk geometry for the small schema at ratio 0.25."""
    return ChunkSpace(small_schema, 0.25, base_tuples=5000)


@pytest.fixture(scope="session")
def small_records(small_schema):
    """5000 uniform tuples for the small schema."""
    return generate_fact_table(small_schema, 5000, seed=11)


@pytest.fixture(scope="session")
def small_engine(small_schema, small_space, small_records):
    """A loaded chunked backend over the small schema (session shared).

    Tests that only *read* may share it; tests that need clean counters
    should flush/reset or build their own engine.
    """
    return BackendEngine.build(
        small_schema,
        small_space,
        small_records,
        organization="chunked",
        page_size=1024,
        buffer_pool_pages=16,
    )


@pytest.fixture()
def fresh_small_engine(small_schema, small_records):
    """A private engine (own space) for tests that mutate counters."""
    space = ChunkSpace(small_schema, 0.25)
    return BackendEngine.build(
        small_schema,
        space,
        small_records,
        organization="chunked",
        page_size=1024,
        buffer_pool_pages=16,
    )


@pytest.fixture(scope="session")
def paper_space(paper_schema):
    """Chunk geometry for the paper schema at the default ratio."""
    return ChunkSpace(paper_schema, 0.2)


@pytest.fixture(scope="session")
def paper_records(paper_schema):
    """30 000 uniform tuples for the paper schema."""
    return generate_fact_table(paper_schema, 30_000, seed=5)


@pytest.fixture(scope="session")
def paper_engine(paper_schema, paper_space, paper_records):
    """A loaded chunked backend over the paper schema (session shared)."""
    return BackendEngine.build(
        paper_schema,
        paper_space,
        paper_records,
        organization="chunked",
        buffer_pool_pages=32,
    )


def brute_force_aggregate(schema, records, groupby, aggregates, selections=None):
    """Reference group-by aggregation in plain Python dictionaries."""
    groups: dict[tuple, dict[str, list[float]]] = {}
    for row in records:
        key = []
        keep = True
        for pos, (dim, level) in enumerate(zip(schema.dimensions, groupby)):
            if level == 0:
                continue
            ordinal = int(row[dim.name])
            if level != dim.leaf_level:
                ordinal = dim.ancestor_ordinal(dim.leaf_level, ordinal, level)
            interval = selections[pos] if selections else None
            if interval is not None and not interval[0] <= ordinal < interval[1]:
                keep = False
                break
            key.append(ordinal)
        if not keep:
            continue
        bucket = groups.setdefault(tuple(key), {})
        for measure in {m for m, _ in aggregates}:
            bucket.setdefault(measure, []).append(float(row[measure]))
    results = []
    for key, bucket in groups.items():
        out = list(key)
        for measure, agg in aggregates:
            values = bucket[measure]
            if agg == "sum":
                out.append(sum(values))
            elif agg == "count":
                out.append(len(values))
            elif agg == "min":
                out.append(min(values))
            elif agg == "max":
                out.append(max(values))
            elif agg == "avg":
                out.append(sum(values) / len(values))
        results.append(
            tuple(
                round(v, 6) if isinstance(v, float) else v for v in out
            )
        )
    return sorted(results)


def canon_rows(rows: np.ndarray) -> list[tuple]:
    """Rows as sorted tuples with rounded floats, for comparisons."""
    return sorted(
        tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        for row in map(tuple, rows.tolist())
    )
