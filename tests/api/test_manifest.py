"""The golden public-API manifest — drift in the stable surface fails.

``tests/api/manifest.txt`` pins every export of ``repro``,
``repro.api`` and ``repro.serve`` with its signature/fields.  An
intentional API change regenerates it (``python -m tools.apicheck
--write``); an accidental one fails here (and in the CI lint job)
with a diff.
"""

from pathlib import Path

from tools.apicheck import PUBLIC_MODULES, public_surface, render

MANIFEST = Path(__file__).parent / "manifest.txt"


def test_surface_matches_golden_manifest():
    golden = MANIFEST.read_text(encoding="utf-8")
    assert golden == render(), (
        "public API surface drifted from tests/api/manifest.txt; if "
        "intentional, regenerate with: python -m tools.apicheck --write"
    )


def test_manifest_covers_the_stable_modules():
    lines = public_surface()
    headers = [line for line in lines if line.startswith("# ")]
    assert headers == [f"# {module}" for module in PUBLIC_MODULES]
    # The facade's core exports are present by name — a rename is an
    # API break even if the manifest is regenerated in the same PR.
    text = "\n".join(lines)
    for required in (
        "repro.api.build_stack",
        "repro.api.build_backend",
        "repro.api.build_cache",
        "repro.api.StackConfig",
        "repro.serve.run_front",
        "repro.serve.FrontConfig",
        "repro.serve.run_soak",
    ):
        assert f"{required}:" in text, f"{required} missing from surface"
