"""Tests for repro.core.cache and repro.core.chunk."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import ChunkCache
from repro.core.chunk import (
    CachedChunk,
    CachedQuery,
    ChunkKey,
    entry_size_bytes,
)
from repro.exceptions import CacheError


def make_chunk(number=0, rows=4, benefit=1.0, groupby=(1, 1)):
    data = np.zeros(rows, dtype=[("D0", "i4"), ("sum_v", "f8")])
    key = ChunkKey(groupby, number, (("v", "sum"),))
    return CachedChunk(key=key, rows=data, benefit=benefit)


class TestChunkKey:
    def test_compatible_key_excludes_number(self):
        a = ChunkKey((1, 1), 0, (("v", "sum"),))
        b = ChunkKey((1, 1), 7, (("v", "sum"),))
        assert a.compatible_key() == b.compatible_key()
        assert a != b

    def test_hashable(self):
        key = ChunkKey((1, 0), 3, (("v", "sum"),), frozenset({"p"}))
        assert key in {key}


class TestEntrySize:
    def test_includes_overhead(self):
        chunk = make_chunk(rows=0)
        assert chunk.size_bytes == entry_size_bytes(chunk.rows)
        assert chunk.size_bytes > 0  # empty chunks still cost something

    def test_grows_with_rows(self):
        assert make_chunk(rows=10).size_bytes > make_chunk(rows=1).size_bytes

    def test_cached_query_size(self, small_schema):
        from repro.query.model import StarQuery

        query = StarQuery.build(small_schema, (1, 1))
        entry = CachedQuery(
            query=query, rows=np.zeros(3, dtype="f8"), benefit=2.0
        )
        assert entry.size_bytes == entry_size_bytes(entry.rows)
        assert entry.num_rows == 3


class TestChunkCache:
    def test_get_miss_then_hit(self):
        cache = ChunkCache(10_000)
        chunk = make_chunk()
        assert cache.get(chunk.key) is None
        cache.put(chunk)
        assert cache.get(chunk.key) is chunk
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_peek_does_not_touch_stats(self):
        cache = ChunkCache(10_000)
        chunk = make_chunk()
        cache.put(chunk)
        cache.peek(chunk.key)
        assert cache.stats.lookups == 0

    def test_budget_respected(self):
        cache = ChunkCache(1_000)
        for number in range(100):
            cache.put(make_chunk(number=number, rows=8))
            assert cache.used_bytes <= cache.capacity_bytes
        assert cache.stats.evictions > 0

    def test_oversized_entry_rejected(self):
        cache = ChunkCache(100)
        assert not cache.put(make_chunk(rows=1000))
        assert cache.stats.rejected == 1
        assert len(cache) == 0

    def test_reinsert_refreshes(self):
        cache = ChunkCache(10_000)
        cache.put(make_chunk(number=1, rows=2))
        bigger = make_chunk(number=1, rows=6)
        cache.put(bigger)
        assert len(cache) == 1
        assert cache.peek(bigger.key).num_rows == 6
        assert cache.used_bytes == bigger.size_bytes

    def test_refresh_larger_than_budget_drops_stale_entry(self):
        """Regression: an over-budget refresh must not leave the old
        payload resident (it would silently serve stale data)."""
        cache = ChunkCache(1_000)
        small = make_chunk(number=1, rows=2)
        assert cache.put(small)
        huge = make_chunk(number=1, rows=10_000)
        assert huge.size_bytes > cache.capacity_bytes
        assert not cache.put(huge)
        assert cache.stats.rejected == 1
        assert cache.peek(huge.key) is None
        assert len(cache) == 0
        assert cache.used_bytes == 0
        assert len(cache.policy) == 0

    def test_refresh_updates_policy_weight(self):
        """A refresh re-enters replacement state at the new benefit, not
        the stale weight of the original insert."""
        cache = ChunkCache(10_000, "benefit")
        cache.put(make_chunk(number=1, rows=2, benefit=1.0))
        refreshed = make_chunk(number=1, rows=2, benefit=9.0)
        cache.put(refreshed)
        node = cache.policy._ring.node(refreshed.key)
        assert node.initial_weight == 9.0

    def test_refresh_counts_as_single_insertion(self):
        cache = ChunkCache(10_000)
        cache.put(make_chunk(number=1, rows=2))
        cache.put(make_chunk(number=1, rows=6))
        assert cache.stats.insertions == 1

    def test_refresh_never_evicts_itself(self):
        """A refresh that fits the budget survives, even when it must
        evict everything else to do so."""
        cache = ChunkCache(300)
        cache.put(make_chunk(number=1, rows=2))
        cache.put(make_chunk(number=2, rows=2))
        bigger = make_chunk(number=1, rows=18)
        assert bigger.size_bytes <= cache.capacity_bytes
        assert cache.put(bigger)
        assert cache.peek(bigger.key) is not None
        assert cache.peek(bigger.key).num_rows == 18

    def test_evict_from_empty_cache_raises(self):
        cache = ChunkCache(1_000)
        with pytest.raises(CacheError):
            cache._evict_one(1.0)

    def test_snapshot_single_pass(self):
        cache = ChunkCache(10_000)
        chunks = [make_chunk(number=n) for n in range(3)]
        for chunk in chunks:
            cache.put(chunk)
        snapshot = cache.snapshot()
        assert [key for key, _ in snapshot] == [c.key for c in chunks]
        assert [entry for _, entry in snapshot] == chunks
        assert cache.stats.lookups == 0  # stats untouched

    def test_invalidate(self):
        cache = ChunkCache(10_000)
        chunk = make_chunk()
        cache.put(chunk)
        assert cache.invalidate(chunk.key)
        assert not cache.invalidate(chunk.key)
        assert cache.used_bytes == 0
        assert len(cache.policy) == 0

    def test_clear(self):
        cache = ChunkCache(10_000)
        for number in range(5):
            cache.put(make_chunk(number=number))
        cache.clear()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_keys_snapshot(self):
        cache = ChunkCache(10_000)
        chunk = make_chunk()
        cache.put(chunk)
        assert cache.keys() == [chunk.key]

    def test_negative_capacity_rejected(self):
        with pytest.raises(CacheError):
            ChunkCache(-1)

    def test_policy_by_name(self):
        for name in ("lru", "clock", "benefit"):
            cache = ChunkCache(1000, name)
            cache.put(make_chunk())
            assert len(cache) == 1

    def test_hit_ratio(self):
        cache = ChunkCache(10_000)
        chunk = make_chunk()
        cache.put(chunk)
        cache.get(chunk.key)
        cache.get(ChunkKey((1, 1), 99, (("v", "sum"),)))
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_hit_ratio_is_zero_at_zero_lookups(self):
        # Pinned: an untouched cache reports 0.0, never a ZeroDivision
        # and never NaN — serving reports aggregate this per shard, and
        # freshly-built shards legitimately have no lookups yet.
        from repro.core.cache import ChunkCacheStats

        stats = ChunkCacheStats()
        assert stats.lookups == 0
        assert repr(stats.hit_ratio) == "0.0"
        assert repr(ChunkCache(1000).stats.hit_ratio) == "0.0"


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(100, 5000),
    ops=st.lists(
        st.tuples(st.integers(0, 30), st.integers(0, 40)), max_size=80
    ),
    policy=st.sampled_from(["lru", "clock", "benefit"]),
)
def test_cache_invariants_under_churn(capacity, ops, policy):
    """used_bytes tracks entries exactly and never exceeds the budget."""
    cache = ChunkCache(capacity, policy)
    for number, rows in ops:
        cache.put(make_chunk(number=number, rows=rows, benefit=number + 0.5))
        assert cache.used_bytes <= capacity
        expected = sum(
            cache.peek(key).size_bytes for key in cache.keys()
        )
        assert cache.used_bytes == expected
        assert len(cache.policy) == len(cache)
