"""Tests for the aggressive-prefetch extension (Section 7 future work)."""

import pytest

from repro.core.cache import ChunkCache
from repro.core.chunk import ChunkKey
from repro.core.manager import ChunkCacheManager
from repro.pipeline.resolvers import PrefetchResolver
from repro.query.model import StarQuery
from repro.workload.generator import SESSION, QueryGenerator
from tests.conftest import canon_rows


@pytest.fixture()
def prefetching_manager(small_schema, fresh_small_engine):
    return ChunkCacheManager(
        small_schema,
        fresh_small_engine.space,
        fresh_small_engine,
        ChunkCache(4_000_000),
        prefetch_drilldown=True,
    )


def _prefetch_resolver(manager) -> PrefetchResolver:
    return next(
        r for r in manager.pipeline.resolvers
        if isinstance(r, PrefetchResolver)
    )


class TestPrefetchGroupby:
    def test_resolver_in_chain(self, prefetching_manager):
        names = [r.name for r in prefetching_manager.pipeline.resolvers]
        assert names == ["cache", "derive", "prefetch", "backend"]

    def test_one_level_finer_everywhere(self, prefetching_manager):
        resolver = _prefetch_resolver(prefetching_manager)
        assert resolver.prefetch_groupby((1, 1)) == (2, 2)
        assert resolver.prefetch_groupby((1, 0)) == (2, 0)

    def test_leaf_level_unchanged(self, prefetching_manager):
        resolver = _prefetch_resolver(prefetching_manager)
        assert resolver.prefetch_groupby((2, 2)) is None
        assert resolver.prefetch_groupby((2, 1)) == (2, 2)


class TestPrefetchBehaviour:
    def test_answers_stay_correct(self, small_schema, prefetching_manager):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        answer = prefetching_manager.answer(query)
        expected, _ = prefetching_manager.backend.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_finer_chunks_cached(self, small_schema, prefetching_manager):
        query = StarQuery.build(small_schema, (1, 1))
        prefetching_manager.answer(query)
        finer_keys = [
            key for key in prefetching_manager.cache.keys()
            if key.groupby == (2, 2)
        ]
        assert finer_keys, "prefetch should cache detail-level chunks"

    def test_drilldown_hits_after_prefetch(self, small_schema, prefetching_manager):
        """The whole point: a subsequent drill-down is served in-tier."""
        coarse = StarQuery.build(small_schema, (1, 1), {"D0": (0, 2)})
        prefetching_manager.answer(coarse)
        drill = StarQuery.build(small_schema, (2, 1), {"D0": (0, 4)})
        answer = prefetching_manager.answer(drill)
        assert answer.record.pages_read == 0, (
            "drill-down should not touch the backend after prefetch"
        )
        expected, _ = prefetching_manager.backend.answer(drill, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_leaf_level_query_falls_back(self, small_schema, prefetching_manager):
        """No finer level exists: the direct path is used and correct."""
        query = StarQuery.build(small_schema, (2, 2), {"D0": (0, 4)})
        answer = prefetching_manager.answer(query)
        expected, _ = prefetching_manager.backend.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_avg_falls_back(self, small_schema, prefetching_manager):
        query = StarQuery.build(
            small_schema, (1, 1), aggregates=[("v", "avg")]
        )
        answer = prefetching_manager.answer(query)
        expected, _ = prefetching_manager.backend.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)
        finer = [
            key for key in prefetching_manager.cache.keys()
            if key.groupby == (2, 2)
        ]
        assert not finer

    def test_io_not_inflated(self, small_schema, fresh_small_engine):
        """Prefetching reads the same base chunks as the direct path."""
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})

        direct = ChunkCacheManager(
            small_schema, fresh_small_engine.space, fresh_small_engine,
            ChunkCache(4_000_000),
        )
        fresh_small_engine.buffer_pool.flush()
        a = direct.answer(query)

        prefetching = ChunkCacheManager(
            small_schema, fresh_small_engine.space, fresh_small_engine,
            ChunkCache(4_000_000), prefetch_drilldown=True,
        )
        fresh_small_engine.buffer_pool.flush()
        b = prefetching.answer(query)
        assert b.record.pages_read <= a.record.pages_read + 2

    def test_session_stream_correct_and_cheaper(
        self, paper_schema, paper_engine
    ):
        """On a drill-down heavy stream, prefetching cuts backend I/O."""
        generator = QueryGenerator(paper_schema, seed=13)
        stream = generator.stream(60, SESSION)

        baseline = ChunkCacheManager(
            paper_schema, paper_engine.space, paper_engine,
            ChunkCache(6_000_000),
        )
        paper_engine.buffer_pool.flush()
        paper_engine.disk.reset_stats()
        for query in stream:
            baseline.answer(query)

        prefetching = ChunkCacheManager(
            paper_schema, paper_engine.space, paper_engine,
            ChunkCache(6_000_000), prefetch_drilldown=True,
        )
        paper_engine.buffer_pool.flush()
        paper_engine.disk.reset_stats()
        for index, query in enumerate(stream):
            answer = prefetching.answer(query)
            if index % 10 == 0:
                expected, _ = paper_engine.answer(query, "scan")
                assert canon_rows(answer.rows) == canon_rows(expected)

        assert (
            prefetching.metrics.total_pages_read()
            < baseline.metrics.total_pages_read()
        )
