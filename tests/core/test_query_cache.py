"""Tests for repro.core.query_cache — the containment baseline."""

import pytest

from repro.core.query_cache import QueryCacheManager
from repro.exceptions import CacheError, QueryError
from repro.query.model import StarQuery
from tests.conftest import canon_rows


@pytest.fixture()
def manager(small_schema, fresh_small_engine):
    return QueryCacheManager(
        small_schema, fresh_small_engine, capacity_bytes=2_000_000
    )


def q(schema, groupby=(1, 1), selections=None, **kwargs):
    return StarQuery.build(schema, groupby, selections, **kwargs)


class TestCorrectness:
    @pytest.mark.parametrize(
        "groupby,selections",
        [
            ((1, 1), {"D0": (1, 4)}),
            ((2, 2), {"D0": (3, 9)}),
            ((1, 0), None),
        ],
    )
    def test_matches_backend(self, small_schema, manager, groupby, selections):
        query = q(small_schema, groupby, selections)
        answer = manager.answer(query)
        expected, _ = manager.backend.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_contained_hit_is_filtered_correctly(self, small_schema, manager):
        manager.answer(q(small_schema, (2, 2), {"D0": (0, 8)}))
        inner = q(small_schema, (2, 2), {"D0": (2, 5), "D1": (1, 4)})
        answer = manager.answer(inner)
        assert answer.record.chunks_hit == 1
        expected, _ = manager.backend.answer(inner, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)


class TestCachingSemantics:
    def test_exact_repeat_hits(self, small_schema, manager):
        query = q(small_schema, (1, 1), {"D0": (0, 3)})
        assert manager.answer(query).record.chunks_hit == 0
        hit = manager.answer(query)
        assert hit.record.chunks_hit == 1
        assert hit.record.pages_read == 0
        assert hit.record.saved_cost == pytest.approx(hit.record.full_cost)

    def test_overlap_without_containment_misses(self, small_schema, manager):
        manager.answer(q(small_schema, (2, 2), {"D0": (0, 5)}))
        answer = manager.answer(q(small_schema, (2, 2), {"D0": (3, 8)}))
        assert answer.record.chunks_hit == 0

    def test_different_groupby_misses(self, small_schema, manager):
        manager.answer(q(small_schema, (2, 2)))
        assert manager.answer(q(small_schema, (1, 1))).record.chunks_hit == 0

    def test_aggregate_superset_serves_subset(self, small_schema, manager):
        manager.answer(
            q(small_schema, (1, 1),
              aggregates=[("v", "sum"), ("v", "count")])
        )
        answer = manager.answer(
            q(small_schema, (1, 1), aggregates=[("v", "sum"), ("v", "count")])
        )
        assert answer.record.chunks_hit == 1

    def test_capacity_respected(self, small_schema, fresh_small_engine):
        manager = QueryCacheManager(
            small_schema, fresh_small_engine, capacity_bytes=3_000
        )
        for lo in range(0, 8):
            manager.answer(q(small_schema, (2, 2), {"D0": (lo, lo + 2)}))
            assert manager.used_bytes <= 3_000

    def test_zero_capacity_never_caches(self, small_schema, fresh_small_engine):
        manager = QueryCacheManager(
            small_schema, fresh_small_engine, capacity_bytes=0
        )
        query = q(small_schema, (1, 1), {"D0": (0, 2)})
        manager.answer(query)
        assert manager.answer(query).record.chunks_hit == 0
        assert len(manager) == 0

    def test_negative_capacity_rejected(self, small_schema, fresh_small_engine):
        with pytest.raises(CacheError):
            QueryCacheManager(small_schema, fresh_small_engine, -1)


class TestRedundancy:
    def test_no_entries_is_one(self, manager):
        assert manager.redundancy_ratio() == 1.0

    def test_disjoint_entries_no_redundancy(self, small_schema, manager):
        manager.answer(q(small_schema, (1, 1), {"D0": (0, 2)}))
        manager.answer(q(small_schema, (1, 1), {"D0": (3, 5)}))
        assert manager.redundancy_ratio() == pytest.approx(1.0)

    def test_overlapping_entries_counted(self, small_schema, manager):
        manager.answer(q(small_schema, (1, 1), {"D0": (0, 3)}))
        manager.answer(q(small_schema, (1, 1), {"D0": (2, 5)}))
        # 3 + 3 cells stored over 5 distinct (per remaining dim span).
        assert manager.redundancy_ratio() == pytest.approx(6 / 5)

    def test_metrics_accumulate(self, small_schema, manager):
        manager.answer(q(small_schema, (1, 1)))
        manager.answer(q(small_schema, (1, 1)))
        assert len(manager.metrics) == 2
        assert 0 < manager.metrics.cost_saving_ratio() <= 1


class TestInvalidationExceptionNarrowing:
    """Regression (R004): invalidation distinguishes "query provably
    selects nothing" (QueryError -> conservative drop) from genuine
    defects in query analysis, which must propagate."""

    def test_unanalyzable_entry_dropped_conservatively(
        self, small_schema, manager, monkeypatch
    ):
        manager.answer(q(small_schema, (1, 1), {"D0": (1, 4)}))

        def provably_empty(self, schema):
            raise QueryError("selection and filter are disjoint")

        monkeypatch.setattr(StarQuery, "leaf_selection", provably_empty)
        assert manager.invalidate_base_chunks([0]) == 1

    def test_analysis_bug_propagates(
        self, small_schema, manager, monkeypatch
    ):
        manager.answer(q(small_schema, (1, 1), {"D0": (1, 4)}))

        def boom(self, schema):
            raise RuntimeError("query analysis broke")

        monkeypatch.setattr(StarQuery, "leaf_selection", boom)
        with pytest.raises(RuntimeError):
            manager.invalidate_base_chunks([0])
