"""Tests for repro.core.manager — the chunk cache manager pipeline."""

import numpy as np
import pytest

from repro.analysis.cost import CostModel
from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkCache
from repro.core.chunk import ChunkKey
from repro.core.manager import ChunkCacheManager
from repro.exceptions import CacheError
from repro.query.model import StarQuery
from tests.conftest import canon_rows


@pytest.fixture()
def manager(small_schema, fresh_small_engine):
    cache = ChunkCache(2_000_000, "benefit")
    return ChunkCacheManager(
        small_schema,
        fresh_small_engine.space,
        fresh_small_engine,
        cache,
    )


def q(schema, groupby=(1, 1), selections=None, **kwargs):
    return StarQuery.build(schema, groupby, selections, **kwargs)


class TestAnswerCorrectness:
    @pytest.mark.parametrize(
        "groupby,selections",
        [
            ((1, 1), {"D0": (1, 4)}),
            ((2, 2), {"D0": (3, 9), "D1": (2, 6)}),
            ((1, 0), None),
            ((0, 2), {"D1": (1, 7)}),
            ((2, 1), {"D0": (0, 5)}),
        ],
    )
    def test_matches_backend_scan(self, small_schema, manager, groupby, selections):
        query = q(small_schema, groupby, selections)
        answer = manager.answer(query)
        expected, _ = manager.backend.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_correct_after_warm_cache(self, small_schema, manager):
        query = q(small_schema, (1, 1), {"D0": (0, 3)})
        first = manager.answer(query)
        second = manager.answer(query)
        assert canon_rows(first.rows) == canon_rows(second.rows)

    def test_correct_with_partial_overlap(self, small_schema, manager):
        manager.answer(q(small_schema, (2, 2), {"D0": (0, 5)}))
        overlapping = q(small_schema, (2, 2), {"D0": (3, 8)})
        answer = manager.answer(overlapping)
        expected, _ = manager.backend.answer(overlapping, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)


class TestCachingBehaviour:
    def test_repeat_query_is_full_hit(self, small_schema, manager):
        query = q(small_schema, (1, 1), {"D0": (0, 3)})
        first = manager.answer(query)
        assert first.record.chunks_hit == 0
        second = manager.answer(query)
        assert second.record.chunks_hit == second.record.chunks_total
        assert second.record.pages_read == 0
        assert second.record.saved_cost == pytest.approx(
            second.record.full_cost
        )

    def test_overlap_partially_reuses(self, small_schema, manager):
        manager.answer(q(small_schema, (2, 2), {"D0": (0, 6)}))
        answer = manager.answer(q(small_schema, (2, 2), {"D0": (4, 9)}))
        assert 0 < answer.record.chunks_hit < answer.record.chunks_total

    def test_different_groupby_no_reuse(self, small_schema, manager):
        manager.answer(q(small_schema, (2, 2)))
        answer = manager.answer(q(small_schema, (1, 1)))
        assert answer.record.chunks_hit == 0

    def test_different_aggregates_no_reuse(self, small_schema, manager):
        manager.answer(q(small_schema, (1, 1), aggregates=[("v", "sum")]))
        answer = manager.answer(
            q(small_schema, (1, 1), aggregates=[("v", "count")])
        )
        assert answer.record.chunks_hit == 0

    def test_different_fixed_predicates_no_reuse(self, small_schema, manager):
        manager.answer(q(small_schema, (1, 1)))
        answer = manager.answer(
            q(small_schema, (1, 1), fixed_predicates=["price>5"])
        )
        assert answer.record.chunks_hit == 0

    def test_cached_chunks_cover_whole_chunk(self, small_schema, manager):
        """Boundary chunks are cached complete, not query-filtered."""
        query = q(small_schema, (2, 2), {"D0": (1, 2)})  # inside one chunk
        manager.answer(query)
        grid = manager.space.grid((2, 2))
        numbers = grid.chunk_numbers_for_selection(query.selections)
        key = ChunkKey((2, 2), numbers[0], query.aggregates)
        entry = manager.cache.peek(key)
        assert entry is not None
        cell = grid.cell_ranges(numbers[0])[0]
        stored_d0 = set(entry.rows["D0"].tolist())
        # The chunk region extends beyond the query's selection.
        assert stored_d0 - set(range(1, 2)), "chunk should hold extra rows"
        assert all(cell.lo <= v < cell.hi for v in stored_d0)

    def test_metrics_accumulate(self, small_schema, manager):
        manager.answer(q(small_schema, (1, 1)))
        manager.answer(q(small_schema, (1, 1)))
        assert len(manager.metrics) == 2
        assert manager.metrics.cost_saving_ratio() > 0

    def test_empty_region_query(self, small_schema, manager):
        """Queries over regions with no data return empty results."""
        # All data lives in leaf ordinals 0..9; the query engine still
        # answers structurally even when a chunk holds zero tuples.
        query = q(small_schema, (2, 2), {"D0": (9, 10), "D1": (7, 8)})
        answer = manager.answer(query)
        expected, _ = manager.backend.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_requires_chunked_backend(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        random_engine = BackendEngine.build(
            small_schema, space, small_records, organization="random"
        )
        with pytest.raises(CacheError):
            ChunkCacheManager(
                small_schema, space, random_engine, ChunkCache(1000)
            )


class TestZeroCapacityCache:
    def test_still_correct(self, small_schema, fresh_small_engine):
        manager = ChunkCacheManager(
            small_schema,
            fresh_small_engine.space,
            fresh_small_engine,
            ChunkCache(0),
        )
        query = q(small_schema, (1, 1), {"D0": (0, 3)})
        first = manager.answer(query)
        second = manager.answer(query)
        assert canon_rows(first.rows) == canon_rows(second.rows)
        assert second.record.chunks_hit == 0  # nothing ever cached
        assert manager.cache.stats.rejected > 0


class TestDerivation:
    """The Section 7 future-work extension: aggregate chunks in the cache."""

    @pytest.fixture()
    def deriving_manager(self, small_schema, fresh_small_engine):
        return ChunkCacheManager(
            small_schema,
            fresh_small_engine.space,
            fresh_small_engine,
            ChunkCache(4_000_000),
            aggregate_in_cache=True,
        )

    def test_derives_coarse_from_fine(self, small_schema, deriving_manager):
        fine = q(small_schema, (2, 2))  # caches every base-level chunk
        deriving_manager.answer(fine)
        coarse = q(small_schema, (1, 1))
        answer = deriving_manager.answer(coarse)
        assert answer.record.chunks_derived == answer.record.chunks_total
        assert answer.record.pages_read == 0
        expected, _ = deriving_manager.backend.answer(coarse, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_partial_sources_fall_back_to_backend(
        self, small_schema, deriving_manager
    ):
        deriving_manager.answer(q(small_schema, (2, 2), {"D0": (0, 2)}))
        answer = deriving_manager.answer(q(small_schema, (1, 1)))
        # Not all fine chunks are cached, so some targets hit the backend.
        assert answer.record.chunks_derived < answer.record.chunks_total
        expected, _ = deriving_manager.backend.answer(
            q(small_schema, (1, 1)), "scan"
        )
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_avg_not_derivable(self, small_schema, deriving_manager):
        fine = q(small_schema, (2, 2), aggregates=[("v", "avg")])
        deriving_manager.answer(fine)
        coarse = q(small_schema, (1, 1), aggregates=[("v", "avg")])
        answer = deriving_manager.answer(coarse)
        assert answer.record.chunks_derived == 0
        expected, _ = deriving_manager.backend.answer(coarse, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_derived_chunks_enter_cache(self, small_schema, deriving_manager):
        deriving_manager.answer(q(small_schema, (2, 2)))
        deriving_manager.answer(q(small_schema, (1, 1)))
        repeat = deriving_manager.answer(q(small_schema, (1, 1)))
        assert repeat.record.chunks_hit == repeat.record.chunks_total


class TestCostAccounting:
    def test_full_cost_stable_across_cache_state(self, small_schema, manager):
        query = q(small_schema, (1, 1), {"D0": (0, 4)})
        first = manager.answer(query)
        second = manager.answer(query)
        assert first.record.full_cost == pytest.approx(
            second.record.full_cost
        )

    def test_miss_time_reflects_io(self, small_schema, fresh_small_engine):
        model = CostModel(io_page_cost=1.0, cpu_tuple_cost=0.0,
                          cache_tuple_cost=0.0)
        manager = ChunkCacheManager(
            small_schema,
            fresh_small_engine.space,
            fresh_small_engine,
            ChunkCache(2_000_000),
            cost_model=model,
        )
        answer = manager.answer(q(small_schema, (1, 1)))
        assert answer.record.time == pytest.approx(
            float(answer.record.pages_read)
        )


class TestDescribeCache:
    def test_snapshot_fields(self, small_schema, manager):
        manager.answer(q(small_schema, (1, 1), {"D0": (0, 3)}))
        manager.answer(q(small_schema, (2, 2), {"D0": (0, 4)}))
        snapshot = manager.describe_cache()
        assert snapshot["entries"] == len(manager.cache)
        assert snapshot["used_bytes"] == manager.cache.used_bytes
        assert set(snapshot["per_groupby"]) == {(1, 1), (2, 2)}
        total_chunks = sum(
            bucket["chunks"] for bucket in snapshot["per_groupby"].values()
        )
        assert total_chunks == len(manager.cache)
        total_bytes = sum(
            bucket["bytes"] for bucket in snapshot["per_groupby"].values()
        )
        assert total_bytes == manager.cache.used_bytes

    def test_empty_cache(self, small_schema, manager):
        snapshot = manager.describe_cache()
        assert snapshot["entries"] == 0
        assert snapshot["per_groupby"] == {}
