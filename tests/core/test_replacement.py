"""Tests for repro.core.replacement — LRU, CLOCK, Benefit-CLOCK."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.replacement import (
    BenefitClockPolicy,
    ClockPolicy,
    LRUPolicy,
    make_policy,
)
from repro.exceptions import CacheError


class TestMakePolicy:
    def test_known(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("clock"), ClockPolicy)
        assert isinstance(make_policy("benefit"), BenefitClockPolicy)

    def test_unknown(self):
        with pytest.raises(CacheError):
            make_policy("mru")


class TestLRU:
    def test_evicts_least_recent(self):
        policy = LRUPolicy()
        for key in "abc":
            policy.on_insert(key, 1.0)
        policy.on_access("a")
        assert policy.victim(1.0) == "b"
        assert policy.victim(1.0) == "c"
        assert policy.victim(1.0) == "a"

    def test_empty_victim_rejected(self):
        with pytest.raises(CacheError):
            LRUPolicy().victim(1.0)

    def test_duplicate_insert_rejected(self):
        policy = LRUPolicy()
        policy.on_insert("a", 1.0)
        with pytest.raises(CacheError):
            policy.on_insert("a", 1.0)

    def test_remove(self):
        policy = LRUPolicy()
        policy.on_insert("a", 1.0)
        policy.on_insert("b", 1.0)
        policy.remove("a")
        assert len(policy) == 1
        assert policy.victim(1.0) == "b"

    def test_remove_absent_is_noop(self):
        LRUPolicy().remove("zz")


class TestClock:
    def test_second_chance(self):
        policy = ClockPolicy()
        for key in "abc":
            policy.on_insert(key, 1.0)
        # All referenced: first sweep clears bits, second evicts 'a'.
        assert policy.victim(1.0) == "a"
        # 'b' had its bit cleared during the sweep.
        policy.on_access("b")
        assert policy.victim(1.0) == "c"

    def test_single_entry(self):
        policy = ClockPolicy()
        policy.on_insert("a", 1.0)
        assert policy.victim(1.0) == "a"
        assert len(policy) == 0

    def test_access_unknown_is_noop(self):
        ClockPolicy().on_access("zz")

    def test_remove_relinks_ring(self):
        policy = ClockPolicy()
        for key in "abcd":
            policy.on_insert(key, 1.0)
        policy.remove("b")
        evicted = {policy.victim(1.0) for _ in range(3)}
        assert evicted == {"a", "c", "d"}


class TestBenefitClock:
    def test_high_benefit_survives(self):
        policy = BenefitClockPolicy()
        policy.on_insert("cheap", 1.0)
        policy.on_insert("precious", 10.0)
        # Incoming weight 1.0: "cheap" is exhausted after one pass,
        # "precious" survives ten.
        assert policy.victim(1.0) == "cheap"
        policy.on_insert("cheap2", 1.0)
        assert policy.victim(1.0) == "cheap2"

    def test_reaccess_restores_weight(self):
        policy = BenefitClockPolicy()
        policy.on_insert("a", 2.0)
        policy.on_insert("b", 2.0)
        # Drain 'a' partially, then restore it.
        policy.victim(1.5)  # evicts whichever drains first
        remaining = len(policy)
        assert remaining == 1

    def test_zero_incoming_weight_terminates(self):
        policy = BenefitClockPolicy()
        policy.on_insert("a", 5.0)
        assert policy.victim(0.0) == "a"

    def test_negative_benefit_rejected(self):
        policy = BenefitClockPolicy()
        with pytest.raises(CacheError):
            policy.on_insert("a", -1.0)

    def test_eviction_order_by_benefit(self):
        policy = BenefitClockPolicy()
        policy.on_insert("small", 1.0)
        policy.on_insert("medium", 3.0)
        policy.on_insert("large", 9.0)
        order = [policy.victim(1.0) for _ in range(3)]
        assert order == ["small", "medium", "large"]


@settings(max_examples=40, deadline=None)
@given(
    policy_name=st.sampled_from(["lru", "clock", "benefit"]),
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "access", "remove", "victim"]),
            st.integers(0, 9),
        ),
        max_size=60,
    ),
)
def test_policy_tracks_membership_consistently(policy_name, ops):
    """Under arbitrary op sequences the policy's key set stays exact."""
    policy = make_policy(policy_name)
    members: set[int] = set()
    for op, key in ops:
        if op == "insert":
            if key not in members:
                policy.on_insert(key, float(key) + 0.5)
                members.add(key)
        elif op == "access":
            policy.on_access(key)
        elif op == "remove":
            policy.remove(key)
            members.discard(key)
        elif op == "victim" and members:
            victim = policy.victim(1.0)
            assert victim in members
            members.remove(victim)
        assert len(policy) == len(members)
