"""Tests for repro.core.tiered — the two-tier chunk cache."""

import json
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import ChunkCache
from repro.core.chunk import CachedChunk, ChunkKey
from repro.core.tiered import (
    TieredChunkCache,
    chunk_token,
    decode_chunk,
    encode_chunk,
    token_key,
)
from repro.exceptions import (
    CacheError,
    ChunkLogError,
    DiskFault,
    InvariantViolation,
)
from repro.storage.chunklog import ChunkLog

PAGE = 256


def make_chunk(number=0, rows=4, benefit=1.0, groupby=(1, 1), fill=0):
    data = np.zeros(rows, dtype=[("D0", "i4"), ("sum_v", "f8")])
    data["D0"] = fill
    data["sum_v"] = fill * 0.5
    key = ChunkKey(groupby, number, (("v", "sum"),))
    return CachedChunk(
        key=key, rows=data, benefit=benefit, compute_pages=float(rows)
    )


def make_tiered(capacity=1_000, demote_min_benefit=0.0, failure_limit=8):
    l1 = ChunkCache(capacity)
    log = ChunkLog(page_size=PAGE)
    return TieredChunkCache(
        l1, log,
        demote_min_benefit=demote_min_benefit,
        failure_limit=failure_limit,
    )


class TestTokenCodec:
    def test_token_roundtrip(self):
        key = ChunkKey((2, 1), 17, (("v", "sum"), ("v", "count")),
                       frozenset({"p=3", "q=1"}))
        assert token_key(chunk_token(key)) == key

    def test_equal_keys_equal_tokens(self):
        a = ChunkKey((1, 1), 0, (("v", "sum"),), frozenset({"x", "y"}))
        b = ChunkKey((1, 1), 0, (("v", "sum"),), frozenset({"y", "x"}))
        assert chunk_token(a) == chunk_token(b)

    def test_chunk_roundtrip_is_exact(self):
        entry = make_chunk(number=3, rows=7, benefit=0.1 + 0.2, fill=9)
        restored = decode_chunk(entry.key, encode_chunk(entry))
        assert restored.key == entry.key
        assert restored.benefit == entry.benefit  # hex round trip, not repr
        assert restored.compute_pages == entry.compute_pages
        assert restored.rows.dtype == entry.rows.dtype
        assert restored.rows.tobytes() == entry.rows.tobytes()


class TestPayloadCodecEdges:
    def test_plain_dtype_roundtrip(self):
        entry = CachedChunk(
            key=make_chunk().key,
            rows=np.arange(6, dtype="<f8"),
            benefit=1.5,
            compute_pages=2.0,
        )
        restored = decode_chunk(entry.key, encode_chunk(entry))
        assert restored.rows.dtype == np.dtype("<f8")
        assert restored.rows.tobytes() == entry.rows.tobytes()

    def test_subarray_field_roundtrip(self):
        rows = np.zeros(3, dtype=[("v", "<f8", (2,)), ("n", "<i4")])
        rows["v"] = [[1, 2], [3, 4], [5, 6]]
        entry = CachedChunk(
            key=make_chunk().key, rows=rows, benefit=1.0, compute_pages=1.0
        )
        restored = decode_chunk(entry.key, encode_chunk(entry))
        assert restored.rows.dtype == rows.dtype
        assert restored.rows.tobytes() == rows.tobytes()

    def test_truncated_payload_rejected(self):
        with pytest.raises(ChunkLogError):
            decode_chunk(make_chunk().key, b"\x01")

    def test_meta_extending_past_the_record_rejected(self):
        with pytest.raises(ChunkLogError):
            decode_chunk(make_chunk().key, struct.pack("<I", 100) + b"{}")

    def test_unparseable_meta_rejected(self):
        meta = b"not json at all"
        with pytest.raises(ChunkLogError):
            decode_chunk(
                make_chunk().key, struct.pack("<I", len(meta)) + meta
            )

    def test_malformed_dtype_spec_rejected(self):
        meta = json.dumps(
            {"b": "0x1p+0", "c": "0x1p+0", "d": 5, "s": [1]}
        ).encode("utf-8")
        with pytest.raises(ChunkLogError):
            decode_chunk(
                make_chunk().key, struct.pack("<I", len(meta)) + meta
            )


class TestSpillAndPromote:
    def test_eviction_spills_to_l2(self):
        tiered = make_tiered(capacity=2 * make_chunk().size_bytes)
        first, second, third = (
            make_chunk(number=n, fill=n) for n in range(3)
        )
        assert tiered.put(first)
        assert tiered.put(second)
        assert tiered.put(third)  # evicts one victim into the log
        assert tiered.tiers()["l2"]["spills"] == 1
        assert len(tiered.log) == 1
        assert len(tiered) == 3  # both tiers counted, no double count

    def test_l2_hit_promotes_back_to_l1(self):
        tiered = make_tiered(capacity=2 * make_chunk().size_bytes)
        chunks = [make_chunk(number=n, fill=n) for n in range(3)]
        for chunk in chunks:
            tiered.put(chunk)
        (victim_key,) = [
            key for key, _, in [(c.key, c) for c in chunks]
            if tiered._l1.peek(key) is None
        ]
        victim = next(c for c in chunks if c.key == victim_key)
        got = tiered.get(victim_key)
        assert got is not None
        assert got.rows.tobytes() == victim.rows.tobytes()
        assert tiered._l1.peek(victim_key) is not None  # resident again
        l2 = tiered.tiers()["l2"]
        assert l2["promotes"] == 1
        assert l2["hits"] == 1

    def test_promotion_counts_as_store_hit(self):
        tiered = make_tiered(capacity=2 * make_chunk().size_bytes)
        for n in range(3):
            tiered.put(make_chunk(number=n, fill=n))
        victim_key = next(
            key for key in [make_chunk(number=n).key for n in range(3)]
            if tiered._l1.peek(key) is None
        )
        before = tiered.stats
        assert tiered.get(victim_key) is not None
        after = tiered.stats
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_true_miss_counts_as_miss(self):
        tiered = make_tiered()
        before = tiered.stats
        assert tiered.get(make_chunk(number=99).key) is None
        after = tiered.stats
        assert after.misses == before.misses + 1
        assert tiered.tiers()["l2"]["misses"] == 1

    def test_peek_never_promotes_or_charges(self):
        tiered = make_tiered(capacity=2 * make_chunk().size_bytes)
        for n in range(3):
            tiered.put(make_chunk(number=n, fill=n))
        victim_key = next(
            key for key in [make_chunk(number=n).key for n in range(3)]
            if tiered._l1.peek(key) is None
        )
        reads_before = tiered.log.disk.stats.reads
        assert tiered.peek(victim_key) is not None
        assert tiered._l1.peek(victim_key) is None  # still L2-only
        assert tiered.log.disk.stats.reads == reads_before
        assert tiered.tiers()["l2"]["promotes"] == 0


class TestDemotionThreshold:
    @pytest.mark.parametrize("threshold", [0.0, 1.0, 5.0])
    @pytest.mark.parametrize("benefit", [0.5, 1.0, 4.9, 5.0])
    def test_matrix(self, threshold, benefit):
        tiered = make_tiered(
            capacity=make_chunk().size_bytes, demote_min_benefit=threshold
        )
        tiered.put(make_chunk(number=0, benefit=benefit))
        tiered.put(make_chunk(number=1, benefit=benefit))  # evicts 0
        l2 = tiered.tiers()["l2"]
        if benefit >= threshold:
            assert (l2["spills"], l2["spill_skipped"]) == (1, 0)
        else:
            assert (l2["spills"], l2["spill_skipped"]) == (0, 1)

    def test_negative_threshold_rejected(self):
        from repro.exceptions import CacheError

        with pytest.raises(CacheError):
            make_tiered(demote_min_benefit=-1.0)


class TestCostAttribution:
    def test_spill_and_promote_pages_attributed_to_l2(self):
        tiered = make_tiered(capacity=2 * make_chunk(rows=64).size_bytes)
        for n in range(3):
            tiered.put(make_chunk(number=n, fill=n, rows=64))
        victim_key = next(
            key for key in [make_chunk(number=n).key for n in range(3)]
            if tiered._l1.peek(key) is None
        )
        assert tiered.get(victim_key) is not None
        l2 = tiered.tiers()["l2"]
        stats = tiered.log.stats
        disk = tiered.log.disk.stats
        assert l2["pages_written"] == disk.writes == stats.append_pages
        assert l2["pages_read"] == disk.reads == stats.read_pages
        assert stats.append_pages >= 1  # the spill did real charged work
        assert stats.read_pages >= 1  # so did the promotion

    def test_exact_page_conservation(self):
        tiered = make_tiered(capacity=2 * make_chunk(rows=64).size_bytes)
        for n in range(6):
            tiered.put(make_chunk(number=n, fill=n, rows=64))
        for n in range(6):
            tiered.get(make_chunk(number=n).key)
        tiered.invalidate(make_chunk(number=0).key)
        tiered.clear()
        stats = tiered.log.stats
        disk = tiered.log.disk.stats
        assert disk.writes == (
            stats.append_pages + stats.tombstone_pages + stats.clear_pages
        )
        assert disk.reads == stats.read_pages + stats.scan_pages
        tiered.check_conservation()  # the invariant checker agrees

    def test_conservation_violation_raises(self):
        tiered = make_tiered()
        tiered.log.stats.append_pages += 1  # fabricate a phantom page
        with pytest.raises(InvariantViolation):
            tiered.check_conservation()


class TestInvalidateAndClear:
    def test_invalidate_drops_both_tiers(self):
        tiered = make_tiered(capacity=make_chunk().size_bytes)
        tiered.put(make_chunk(number=0))
        tiered.put(make_chunk(number=1))  # 0 spills to L2
        key = make_chunk(number=0).key
        assert key in tiered
        assert tiered.invalidate(key) is True
        assert key not in tiered
        assert tiered.get(key) is None
        assert tiered.log.stats.tombstones == 1

    def test_clear_drops_both_tiers(self):
        tiered = make_tiered(capacity=make_chunk().size_bytes)
        tiered.put(make_chunk(number=0))
        tiered.put(make_chunk(number=1))
        tiered.clear()
        assert len(tiered) == 0
        assert len(tiered.log) == 0

    def test_faulted_tombstone_still_invalidates(self):
        tiered = make_tiered(capacity=make_chunk().size_bytes)
        tiered.put(make_chunk(number=0))
        tiered.put(make_chunk(number=1))  # 0 spilled
        key = make_chunk(number=0).key

        def hook(page_id):
            raise DiskFault("wedged", page_id=page_id, transient=False)

        tiered.log.disk.write_hook = hook
        assert tiered.invalidate(key) is True
        tiered.log.disk.write_hook = None
        # The tombstone never landed, but the key is dead to this
        # process either way.
        assert key not in tiered
        assert tiered.tiers()["l2"]["spill_faults"] == 1
        tiered.check_conservation()

    def test_faulted_clear_still_clears_the_manifest(self):
        tiered = make_tiered(capacity=make_chunk().size_bytes)
        tiered.put(make_chunk(number=0))
        tiered.put(make_chunk(number=1))

        def hook(page_id):
            raise DiskFault("wedged", page_id=page_id, transient=False)

        tiered.log.disk.write_hook = hook
        tiered.clear()
        tiered.log.disk.write_hook = None
        assert len(tiered) == 0
        assert make_chunk(number=0).key not in tiered
        assert tiered.tiers()["l2"]["spill_faults"] == 1
        tiered.check_conservation()


class TestStoreSurfaces:
    def test_failure_limit_validated(self):
        with pytest.raises(CacheError):
            TieredChunkCache(
                ChunkCache(100), ChunkLog(page_size=PAGE), failure_limit=0
            )

    def test_capacity_is_the_l1_budget(self):
        assert make_tiered(capacity=4_096).capacity_bytes == 4_096

    def test_membership_and_peek_prefer_l1(self):
        tiered = make_tiered()
        entry = make_chunk(fill=3)
        tiered.put(entry)
        assert entry.key in tiered
        resident = tiered.peek(entry.key)
        assert resident is not None
        assert resident.rows["D0"][0] == 3
        assert tiered.peek(make_chunk(number=9).key) is None

    def test_snapshot_spans_both_tiers(self):
        tiered = make_tiered(capacity=2 * make_chunk().size_bytes)
        for n in range(3):
            tiered.put(make_chunk(number=n, fill=n))
        pairs = tiered.snapshot()
        assert len(pairs) == 3  # two resident + one decoded from the log
        assert {key.number for key, _ in pairs} == {0, 1, 2}
        tiered.check_conservation()  # snapshot decodes are uncharged

    def test_stale_manifest_entry_is_a_miss(self):
        tiered = make_tiered(capacity=make_chunk().size_bytes)
        tiered.put(make_chunk(number=0))
        tiered.put(make_chunk(number=1))  # 0 spilled
        key = make_chunk(number=0).key
        # Delete behind the tier's back: the manifest now points at a
        # record the log no longer holds.
        tiered.log.delete(chunk_token(key))
        assert tiered.get(key) is None
        assert key not in tiered  # the stale entry is forgotten
        tiered.check_conservation()

    def test_respill_credits_the_existing_record(self):
        size = len(encode_chunk(make_chunk()))
        tiered = TieredChunkCache(
            ChunkCache(make_chunk().size_bytes),
            ChunkLog(page_size=PAGE),
            l2_budget_bytes=2 * size,
        )
        first, second = make_chunk(number=0), make_chunk(number=1, fill=1)
        tiered.put(first)
        tiered.put(second)  # spill 0
        tiered.put(first)   # spill 1
        tiered.put(second)  # re-spill 0: replaced in place, no eviction
        l2 = tiered.tiers()["l2"]
        assert l2["spills"] == 3
        assert l2["evictions"] == 0
        assert l2["budget_skipped"] == 0
        tiered.check_conservation()

    def test_budget_eviction_survives_a_faulted_tombstone(self):
        size = len(encode_chunk(make_chunk()))
        tiered = TieredChunkCache(
            ChunkCache(make_chunk().size_bytes),
            ChunkLog(page_size=PAGE),
            l2_budget_bytes=size,
            failure_limit=8,
        )
        first, second = make_chunk(number=0), make_chunk(number=1, fill=1)
        tiered.put(first)
        tiered.put(second)  # spill 0, exactly filling the budget

        def hook(page_id):
            raise DiskFault("wedged", page_id=page_id, transient=False)

        tiered.log.disk.write_hook = hook
        tiered.put(first)  # spill 1: budget-evicts 0 (tombstone faults),
        tiered.log.disk.write_hook = None  # then its own append faults
        l2 = tiered.tiers()["l2"]
        assert l2["evictions"] == 1
        assert l2["spill_faults"] == 2
        tiered.check_conservation()

    def test_unparseable_token_is_quarantined_on_rebuild(self):
        log = ChunkLog(page_size=PAGE)
        log.append("not-json", b"payload", 1.0)
        tiered = TieredChunkCache(ChunkCache(1_000), log)
        assert tiered.tiers()["l2"]["quarantined"] == 1
        assert len(tiered) == 0
        assert "not-json" not in log

    def test_degraded_tier_hides_l2_keys(self):
        tiered = make_tiered(
            capacity=make_chunk().size_bytes, failure_limit=1
        )
        tiered.put(make_chunk(number=0))
        tiered.put(make_chunk(number=1))  # 0 spilled cleanly

        def hook(page_id):
            raise DiskFault("wedged", page_id=page_id, transient=False)

        tiered.log.disk.write_hook = hook
        tiered.put(make_chunk(number=2))  # faulted spill degrades the tier
        tiered.log.disk.write_hook = None
        assert tiered.tiers()["l2"]["degraded"] is True
        # The spilled key survives in the log but is invisible now.
        assert len(tiered.keys()) == len(tiered._l1.keys())
        assert len(tiered) == 1


class TestDegrade:
    def test_corrupt_payload_quarantines(self):
        tiered = make_tiered()
        key = make_chunk(number=5).key
        token = chunk_token(key)
        tiered.log.append(token, b"not-a-chunk-payload", 1.0)
        with tiered._lock:
            tiered._rebuild_keys_locked()
        assert tiered.get(key) is None
        l2 = tiered.tiers()["l2"]
        assert l2["quarantined"] == 1
        assert token not in tiered.log  # dropped from the manifest

    def test_failure_streak_disables_l2(self):
        tiered = make_tiered(
            capacity=make_chunk().size_bytes, failure_limit=2
        )
        tiered.put(make_chunk(number=0))
        tiered.put(make_chunk(number=1))  # 0 spilled
        key = make_chunk(number=0).key

        def hook(page_id):
            raise DiskFault("dead", page_id=page_id, transient=False)

        tiered.log.disk.read_hook = hook
        assert tiered.get(key) is None
        assert tiered.tiers()["l2"]["degraded"] is False
        assert tiered.get(key) is None  # second strike
        tiered.log.disk.read_hook = None
        l2 = tiered.tiers()["l2"]
        assert l2["degraded"] is True
        assert l2["promote_faults"] == 2
        # Degraded tier is invisible: membership and lookups are L1-only.
        assert key not in tiered
        assert tiered.get(key) is None
        # L1 keeps serving.
        resident = make_chunk(number=1)
        assert tiered.get(resident.key) is not None

    def test_transient_fault_retries_once(self):
        tiered = make_tiered(capacity=make_chunk().size_bytes)
        tiered.put(make_chunk(number=0, fill=7))
        tiered.put(make_chunk(number=1))
        key = make_chunk(number=0).key
        calls = []

        def hook(page_id):
            calls.append(page_id)
            if len(calls) == 1:
                raise DiskFault("blip", page_id=page_id, transient=True)
            return 0.0

        tiered.log.disk.read_hook = hook
        got = tiered.get(key)
        tiered.log.disk.read_hook = None
        assert got is not None
        assert got.rows["D0"][0] == 7
        assert tiered.tiers()["l2"]["promote_faults"] == 0
        tiered.check_conservation()  # the aborted read's page reconciles


class TestReopen:
    def test_warm_start_loads_highest_benefit_first(self):
        size = make_chunk().size_bytes
        log = ChunkLog(page_size=PAGE)
        for n, benefit in enumerate([0.5, 3.0, 2.0, 1.0]):
            entry = make_chunk(number=n, benefit=benefit, fill=n)
            log.append(chunk_token(entry.key), encode_chunk(entry), benefit)
        fresh = TieredChunkCache(ChunkCache(2 * size), log)
        loaded = fresh.reopen()
        assert loaded == 2
        assert fresh.tiers()["l2"]["warm_loaded"] == 2
        # The two highest-benefit entries are resident, budget-bounded.
        assert fresh._l1.peek(make_chunk(number=1).key) is not None
        assert fresh._l1.peek(make_chunk(number=2).key) is not None
        assert fresh._l1.peek(make_chunk(number=0).key) is None
        # The rest stay reachable through promotion.
        assert fresh.get(make_chunk(number=3).key) is not None

    def test_warm_start_does_not_respill(self):
        size = make_chunk().size_bytes
        log = ChunkLog(page_size=PAGE)
        for n in range(4):
            entry = make_chunk(number=n, benefit=1.0 + n)
            log.append(chunk_token(entry.key), encode_chunk(entry), 1.0 + n)
        fresh = TieredChunkCache(ChunkCache(2 * size), log)
        writes_before = log.disk.stats.writes
        fresh.reopen()
        # Warm filling must not cascade eviction spills back into the log.
        assert log.disk.stats.writes == writes_before
        assert fresh.tiers()["l2"]["spills"] == 0


class TestL2BudgetValidation:
    def test_negative_budget_rejected(self):
        with pytest.raises(CacheError):
            TieredChunkCache(
                ChunkCache(1_000), ChunkLog(page_size=PAGE),
                l2_budget_bytes=-1,
            )

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5])
    def test_out_of_range_compact_threshold_rejected(self, threshold):
        with pytest.raises(CacheError):
            TieredChunkCache(
                ChunkCache(1_000), ChunkLog(page_size=PAGE),
                compact_threshold=threshold,
            )

    def test_unbounded_budget_never_evicts(self):
        size = make_chunk().size_bytes
        tiered = TieredChunkCache(ChunkCache(size), ChunkLog(page_size=PAGE))
        for n in range(6):
            tiered.put(make_chunk(number=n, fill=n))
        l2 = tiered.tiers()["l2"]
        assert l2["evictions"] == 0
        assert l2["budget_skipped"] == 0
        assert l2["budget_bytes"] is None
        assert len(tiered.log) == 5


class TestBudgetReopen:
    """Warm start under ``l2_budget_bytes``: the recovered live set is
    the strict benefit-ranked prefix that fits the budget."""

    @staticmethod
    def fill_log(entries):
        log = ChunkLog(page_size=PAGE)
        sizes = {}
        for number, rows, benefit in entries:
            entry = make_chunk(number=number, rows=rows, benefit=benefit)
            payload = encode_chunk(entry)
            log.put(chunk_token(entry.key), payload, benefit)
            sizes[number] = len(payload)
        return log, sizes

    def test_reopen_keeps_the_benefit_ranked_prefix(self):
        log, sizes = self.fill_log(
            [(0, 4, 3.0), (1, 4, 1.0), (2, 4, 2.0)]
        )
        tiered = TieredChunkCache(
            ChunkCache(1 << 20), log, l2_budget_bytes=2 * sizes[0]
        )
        tiered.reopen()
        assert chunk_token(make_chunk(number=0).key) in log
        assert chunk_token(make_chunk(number=2).key) in log
        assert chunk_token(make_chunk(number=1).key) not in log
        assert tiered.tiers()["l2"]["evictions"] == 1
        assert log.live_bytes <= 2 * sizes[0]
        tiered.check_conservation()

    def test_zero_budget_drops_everything(self):
        log, _sizes = self.fill_log([(0, 4, 3.0), (1, 4, 1.0)])
        tiered = TieredChunkCache(
            ChunkCache(1 << 20), log, l2_budget_bytes=0
        )
        loaded = tiered.reopen()
        assert loaded == 0
        assert len(log) == 0
        assert log.stats.tombstones == 2  # charged, durable drops
        tiered.check_conservation()

    def test_single_oversized_record_is_dropped_even_alone(self):
        log, sizes = self.fill_log([(0, 16, 5.0)])
        tiered = TieredChunkCache(
            ChunkCache(1 << 20), log, l2_budget_bytes=sizes[0] - 1
        )
        assert tiered.reopen() == 0
        assert len(log) == 0
        tiered.check_conservation()

    def test_ranking_stops_at_the_first_record_that_does_not_fit(self):
        # A (big, benefit 5) fits; B (big, benefit 4) does not; C
        # (small, benefit 3) *would* fit — but the prefix is strict, so
        # everything ranked below the first non-fit is dropped too.
        log, sizes = self.fill_log(
            [(0, 16, 5.0), (1, 16, 4.0), (2, 4, 3.0)]
        )
        assert sizes[2] < sizes[0]
        tiered = TieredChunkCache(
            ChunkCache(1 << 20), log, l2_budget_bytes=sizes[0] + sizes[2]
        )
        tiered.reopen()
        assert log.tokens() == (chunk_token(make_chunk(number=0).key),)
        assert tiered.tiers()["l2"]["evictions"] == 2
        tiered.check_conservation()


class TestCompactionTrigger:
    def test_crossing_the_dead_space_ratio_compacts(self):
        size = make_chunk().size_bytes
        tiered = TieredChunkCache(
            ChunkCache(size), ChunkLog(page_size=PAGE),
            compact_threshold=0.5,
        )
        tiered.put(make_chunk(number=0, fill=0))
        tiered.put(make_chunk(number=1, fill=1))  # spills #0
        tiered.invalidate(make_chunk(number=0).key)  # all L2 pages dead
        l2 = tiered.tiers()["l2"]
        assert l2["compactions"] == 1
        assert l2["dead_pages"] == 0
        assert l2["reclaimed_pages"] > 0
        tiered.check_conservation()

    def test_no_threshold_never_compacts(self):
        size = make_chunk().size_bytes
        tiered = TieredChunkCache(ChunkCache(size), ChunkLog(page_size=PAGE))
        tiered.put(make_chunk(number=0, fill=0))
        tiered.put(make_chunk(number=1, fill=1))
        tiered.invalidate(make_chunk(number=0).key)
        l2 = tiered.tiers()["l2"]
        assert l2["compactions"] == 0
        assert l2["dead_pages"] > 0

    def test_faulted_compaction_counts_but_does_not_degrade(self):
        size = make_chunk().size_bytes
        tiered = TieredChunkCache(
            ChunkCache(size), ChunkLog(page_size=PAGE),
            compact_threshold=0.5,
        )
        for n in range(3):
            tiered.put(make_chunk(number=n, fill=n))  # spills #0, #1
        tiered.log.compact_hook = lambda index: True
        tiered.invalidate(make_chunk(number=0).key)  # ratio hits 0.5
        tiered.log.compact_hook = None
        l2 = tiered.tiers()["l2"]
        assert l2["compact_faults"] == 1
        assert l2["compactions"] == 0
        assert l2["degraded"] is False
        assert l2["dead_pages"] > 0  # the abort left the log untouched
        tiered.check_conservation()

    def test_tiers_surface_the_space_gauges(self):
        tiered = make_tiered()
        l2 = tiered.tiers()["l2"]
        for gauge in (
            "live_pages", "dead_pages", "compactions", "reclaimed_pages",
            "compact_faults", "evictions", "budget_skipped", "budget_bytes",
        ):
            assert gauge in l2


class TestInfiniteL1Equivalence:
    """With an L1 that never evicts, the tier machinery is inert: a
    2-tier stack must be bit-identical to the plain cache."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "invalidate"]),
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=1, max_value=16),
                st.floats(
                    min_value=0.01, max_value=10.0,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_two_tier_with_infinite_l1_matches_one_tier(self, ops):
        plain = ChunkCache(1 << 30)
        tiered = TieredChunkCache(ChunkCache(1 << 30), ChunkLog(page_size=PAGE))
        for op, number, rows, benefit in ops:
            if op == "put":
                entry = make_chunk(
                    number=number, rows=rows, benefit=benefit, fill=number
                )
                assert plain.put(entry) == tiered.put(
                    make_chunk(
                        number=number, rows=rows, benefit=benefit, fill=number
                    )
                )
            elif op == "get":
                key = make_chunk(number=number).key
                a, b = plain.get(key), tiered.get(key)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.rows.tobytes() == b.rows.tobytes()
                    assert a.benefit == b.benefit
            else:
                key = make_chunk(number=number).key
                assert plain.invalidate(key) == tiered.invalidate(key)
        assert plain.stats == tiered.stats
        assert sorted(map(chunk_token, plain.keys())) == sorted(
            map(chunk_token, tiered.keys())
        )
        assert tiered.tiers()["l2"]["spills"] == 0
        assert tiered.log.disk.stats.writes == 0
