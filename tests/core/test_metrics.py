"""Tests for repro.core.metrics — CSR and stream summaries."""

import pytest
from hypothesis import given, strategies as st

from repro.core.metrics import QueryRecord, StreamMetrics
from repro.exceptions import ExperimentError


def record(time=1.0, full=10.0, saved=0.0, total=4, hit=0, derived=0,
           pages=3, rows=5):
    return QueryRecord(
        time=time, full_cost=full, saved_cost=saved, chunks_total=total,
        chunks_hit=hit, chunks_derived=derived, pages_read=pages,
        result_rows=rows,
    )


class TestQueryRecord:
    def test_full_hit_detection(self):
        assert record(total=3, hit=3).is_full_hit
        assert record(total=3, hit=2, derived=1).is_full_hit
        assert not record(total=3, hit=2).is_full_hit


class TestStreamMetrics:
    def test_empty(self):
        m = StreamMetrics()
        assert m.cost_saving_ratio() == 0.0
        assert m.mean_time() == 0.0
        assert m.mean_time_last(100) == 0.0
        assert m.chunk_hit_ratio() == 0.0
        assert m.full_hit_ratio() == 0.0
        assert len(m) == 0

    def test_csr_matches_ssv_formula(self):
        """Whole-query hits/misses reduce to the [SSV] formula."""
        m = StreamMetrics()
        # Query a: cost 10, referenced 3 times, 2 hits.
        m.record(record(full=10.0, saved=0.0))
        m.record(record(full=10.0, saved=10.0))
        m.record(record(full=10.0, saved=10.0))
        # Query b: cost 40, referenced 1 time, 0 hits.
        m.record(record(full=40.0, saved=0.0))
        assert m.cost_saving_ratio() == pytest.approx(20.0 / 70.0)

    def test_partial_savings(self):
        m = StreamMetrics()
        m.record(record(full=10.0, saved=4.0, total=10, hit=4))
        assert m.cost_saving_ratio() == pytest.approx(0.4)
        assert m.chunk_hit_ratio() == pytest.approx(0.4)

    def test_csr_zero_cost_stream(self):
        """A stream of free queries saves nothing — no 0/0, no crash.

        Regression for R002: the guard is an ordering comparison, so it
        also covers denormal-tiny totals instead of exact-zero only.
        """
        m = StreamMetrics()
        m.record(record(time=0.0, full=0.0, saved=0.0))
        m.record(record(time=0.0, full=0.0, saved=0.0))
        assert m.cost_saving_ratio() == 0.0

    def test_csr_denormal_costs_still_ratio(self):
        m = StreamMetrics()
        m.record(record(full=5e-324, saved=5e-324))
        assert m.cost_saving_ratio() == pytest.approx(1.0)

    def test_mean_time_last_window(self):
        m = StreamMetrics()
        for t in (1.0, 2.0, 3.0, 4.0):
            m.record(record(time=t))
        assert m.mean_time_last(2) == pytest.approx(3.5)
        assert m.mean_time() == pytest.approx(2.5)
        assert m.total_time() == pytest.approx(10.0)

    def test_mean_time_last_bad_n(self):
        with pytest.raises(ExperimentError):
            StreamMetrics().mean_time_last(0)

    def test_negative_costs_rejected(self):
        m = StreamMetrics()
        with pytest.raises(ExperimentError):
            m.record(record(full=-1.0))

    def test_total_pages(self):
        m = StreamMetrics()
        m.record(record(pages=3))
        m.record(record(pages=4))
        assert m.total_pages_read() == 7

    def test_summary_keys(self):
        m = StreamMetrics()
        m.record(record())
        summary = m.summary()
        assert set(summary) == {
            "queries", "csr", "mean_time", "mean_time_last_100",
            "chunk_hit_ratio", "full_hit_ratio", "pages_read",
        }
        assert summary["queries"] == 1.0


@given(
    st.lists(
        st.tuples(
            st.floats(0, 100, allow_nan=False),
            st.floats(0, 1, allow_nan=False),
        ),
        max_size=50,
    )
)
def test_csr_always_in_unit_interval(pairs):
    m = StreamMetrics()
    for full, fraction in pairs:
        m.record(record(full=full, saved=full * fraction))
    assert 0.0 <= m.cost_saving_ratio() <= 1.0
