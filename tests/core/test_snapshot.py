"""The typed Snapshot tree and its bit-identical legacy shims.

The deprecation contract: ``manager.describe_cache()`` must keep
returning the *exact* pre-snapshot dictionary — same keys, same
insertion order, same numeric types, same float values — while
``manager.snapshot()`` exposes the same facts as a typed frozen tree
with one canonical JSON rendering.
"""

import json

import pytest

from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.core.query_cache import QueryCacheManager
from repro.core.snapshot import (
    ChunkCacheSnapshot,
    QueryCacheSnapshot,
    Snapshot,
)
from repro.query.model import StarQuery


def _queries(schema):
    return [
        StarQuery.build(schema, (1, 1), {}),
        StarQuery.build(schema, (1, 1), {"D0": (0, 3)}),
        StarQuery.build(schema, (2, 1), {}),
        StarQuery.build(schema, (1, 1), {}),
    ]


@pytest.fixture()
def chunk_manager(small_schema, small_engine):
    manager = ChunkCacheManager(
        small_schema,
        small_engine.space,
        small_engine,
        ChunkCache(1 << 18, "benefit"),
        aggregate_in_cache=True,
    )
    for query in _queries(small_schema):
        manager.answer(query)
    return manager


@pytest.fixture()
def query_manager(small_schema, small_engine):
    manager = QueryCacheManager(small_schema, small_engine, 1 << 18)
    for query in _queries(small_schema):
        manager.answer(query)
    return manager


class TestChunkScheme:
    def test_shim_is_bit_identical(self, chunk_manager):
        snapshot = chunk_manager.snapshot()
        legacy = chunk_manager.describe_cache()
        assert legacy == snapshot.legacy_dict()
        assert repr(legacy) == repr(snapshot.legacy_dict())
        # Insertion order is part of the contract.
        assert list(legacy) == list(snapshot.legacy_dict())

    def test_legacy_key_order_and_types(self, chunk_manager):
        legacy = chunk_manager.describe_cache()
        assert list(legacy)[:6] == [
            "used_bytes", "capacity_bytes", "entries", "hit_ratio",
            "evictions", "per_groupby",
        ]
        for bucket in legacy["per_groupby"].values():
            assert type(bucket["chunks"]) is int
            assert type(bucket["bytes"]) is int
            assert type(bucket["benefit"]) is float

    def test_typed_tree_matches_the_dict(self, chunk_manager):
        snapshot = chunk_manager.snapshot()
        assert snapshot.kind == "chunk"
        cache = snapshot.cache
        assert isinstance(cache, ChunkCacheSnapshot)
        legacy = snapshot.legacy_dict()
        assert cache.used_bytes == legacy["used_bytes"]
        assert cache.entries == legacy["entries"]
        assert cache.hit_ratio == legacy["hit_ratio"]
        assert len(cache.per_groupby) == len(legacy["per_groupby"])
        # Stable ordering: descending bytes.
        sizes = [usage.bytes for usage in cache.per_groupby]
        assert sizes == sorted(sizes, reverse=True)
        names = {stage.name for stage in cache.stages}
        assert names == set(legacy["stages"])

    def test_to_json_is_serializable_and_canonical(self, chunk_manager):
        payload = chunk_manager.snapshot().to_json()
        round_tripped = json.loads(json.dumps(payload, sort_keys=True))
        assert round_tripped["kind"] == "chunk"
        assert round_tripped["cache"]["entries"] == (
            chunk_manager.describe_cache()["entries"]
        )

    def test_fault_stats_match_legacy_faults_entry(self, chunk_manager):
        snapshot = chunk_manager.snapshot()
        faults = snapshot.cache.fault_stats()
        legacy = chunk_manager.describe_cache()["faults"]
        assert faults.poisoned_puts == legacy["poisoned_puts"]
        assert faults.retries == legacy["retries"]
        assert faults.degraded == legacy["degraded"]


class TestQueryScheme:
    def test_shim_is_bit_identical(self, query_manager):
        snapshot = query_manager.snapshot()
        legacy = query_manager.describe_cache()
        assert legacy == snapshot.legacy_dict()
        assert repr(legacy) == repr(snapshot.legacy_dict())
        assert list(legacy) == list(snapshot.legacy_dict())

    def test_typed_tree_shape(self, query_manager):
        snapshot = query_manager.snapshot()
        assert snapshot.kind == "query"
        cache = snapshot.cache
        assert isinstance(cache, QueryCacheSnapshot)
        legacy = snapshot.legacy_dict()
        assert cache.redundancy_ratio == legacy["redundancy_ratio"]
        assert len(cache.per_shape) == len(legacy["per_shape"])
        for usage in cache.per_shape:
            assert type(usage.results) is int
            assert type(usage.bytes) is int

    def test_to_json_is_serializable(self, query_manager):
        payload = query_manager.snapshot().to_json()
        assert json.loads(json.dumps(payload))["kind"] == "query"


class TestProtocol:
    def test_snapshot_is_a_protocol_member(
        self, chunk_manager, query_manager
    ):
        from repro.pipeline.protocol import QueryAnswerer

        for manager in (chunk_manager, query_manager):
            assert isinstance(manager, QueryAnswerer)
            assert isinstance(manager.snapshot(), Snapshot)
