"""Tests for repro.analysis.probability — Feller occupancy math."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.probability import (
    bitmap_speedup_model,
    expected_distinct,
    expected_pages_chunked,
    expected_pages_random,
)
from repro.exceptions import ExperimentError


class TestExpectedDistinct:
    def test_boundaries(self):
        assert expected_distinct(0, 10) == 0.0
        assert expected_distinct(5, 1) == 1.0

    def test_paper_properties(self):
        """f(r,k) <= min(r,k); ~r for r<<k; ~k for r>>k."""
        assert expected_distinct(3, 1000) == pytest.approx(3, rel=0.01)
        assert expected_distinct(100_000, 10) == pytest.approx(10, rel=0.001)
        for r, k in [(5, 7), (50, 50), (200, 10)]:
            f = expected_distinct(r, k)
            assert f <= min(r, k) + 1e-9

    def test_monotone_in_r(self):
        values = [expected_distinct(r, 100) for r in range(0, 500, 25)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_matches_simulation(self):
        rng = np.random.default_rng(0)
        k, r, trials = 50, 120, 2000
        observed = np.mean(
            [len(np.unique(rng.integers(0, k, r))) for _ in range(trials)]
        )
        assert expected_distinct(r, k) == pytest.approx(observed, rel=0.02)

    def test_bad_inputs(self):
        with pytest.raises(ExperimentError):
            expected_distinct(1, 0)
        with pytest.raises(ExperimentError):
            expected_distinct(-1, 5)


class TestPageModels:
    def test_chunked_never_exceeds_random(self):
        for tuples in (1, 10, 100, 1000):
            random_pages = expected_pages_random(tuples, 400)
            chunked_pages = expected_pages_chunked(tuples, 400)
            assert chunked_pages <= random_pages + 1e-9

    def test_chunked_capped_by_selected_chunks(self):
        pages = expected_pages_chunked(
            10_000, 400, selected_chunks=20, pages_per_chunk=1.0
        )
        assert pages <= 20

    def test_chunked_cap_never_exceeds_total(self):
        pages = expected_pages_chunked(
            10_000, 100, selected_chunks=1000, pages_per_chunk=5.0
        )
        assert pages <= 100

    def test_zero_candidates(self):
        assert expected_pages_chunked(10, 100, selected_chunks=0) == 0.0


class TestSpeedupModel:
    def test_paper_regime_shows_improvement(self):
        """When 1 << T*d << sqrt(P), chunked wins clearly."""
        pages_random, pages_chunked = bitmap_speedup_model(
            num_tuples=1_000_000, tuples_per_page=100, density=0.05
        )
        assert pages_chunked < pages_random

    def test_bad_inputs(self):
        with pytest.raises(ExperimentError):
            bitmap_speedup_model(0, 10, 0.5)
        with pytest.raises(ExperimentError):
            bitmap_speedup_model(100, 10, 0.0)
        with pytest.raises(ExperimentError):
            bitmap_speedup_model(100, 0, 0.5)


@given(
    r=st.integers(0, 10**6),
    k=st.floats(1, 1e6, allow_nan=False),
)
def test_f_bounds_property(r, k):
    """For whole draws, f(r, k) is bounded by both r and k."""
    f = expected_distinct(r, k)
    assert -1e-9 <= f <= min(r, k) + 1e-6
