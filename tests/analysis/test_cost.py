"""Tests for repro.analysis.cost — the simulated cost model."""

import pytest

from repro.analysis.cost import CostModel
from repro.backend.plans import CostReport
from repro.exceptions import ExperimentError


class TestCostModel:
    def test_linear_combination(self):
        model = CostModel(
            io_page_cost=2.0, cpu_tuple_cost=0.1, cache_tuple_cost=0.01
        )
        report = CostReport(pages_read=5, tuples_scanned=30)
        assert model.time(report) == pytest.approx(2.0 * 5 + 0.1 * 30)
        assert model.time(report, tuples_from_cache=100) == pytest.approx(
            2.0 * 5 + 0.1 * 30 + 0.01 * 100
        )

    def test_backend_time(self):
        model = CostModel(io_page_cost=1.0, cpu_tuple_cost=0.5)
        assert model.backend_time(4, 10) == pytest.approx(9.0)
        assert model.backend_time(4) == pytest.approx(4.0)

    def test_defaults_make_io_dominant(self):
        """A page I/O costs far more than touching one tuple."""
        model = CostModel()
        assert model.io_page_cost > 100 * model.cpu_tuple_cost

    def test_negative_constants_rejected(self):
        with pytest.raises(ExperimentError):
            CostModel(io_page_cost=-1)
        with pytest.raises(ExperimentError):
            CostModel(cpu_tuple_cost=-0.1)
        with pytest.raises(ExperimentError):
            CostModel(cache_tuple_cost=-0.1)

    def test_frozen(self):
        model = CostModel()
        with pytest.raises(AttributeError):
            model.io_page_cost = 5.0  # type: ignore[misc]


class TestConstantSensitivity:
    """The paper's conclusions are ratios; they must survive reasonable
    changes to the cost constants (DESIGN.md §2)."""

    def test_scheme_ordering_invariant_to_io_cost(self):
        chunk_report = CostReport(pages_read=50, tuples_scanned=5_000)
        query_report = CostReport(pages_read=150, tuples_scanned=15_000)
        for io_cost in (0.5, 1.0, 4.0):
            model = CostModel(io_page_cost=io_cost)
            assert model.time(chunk_report) < model.time(query_report)
