"""Stateful integration: queries and updates interleaved stay correct.

Simulates a live system — queries answered through the chunk cache while
batches of new tuples arrive, with invalidation after every batch and a
mid-stream reorganization — and checks every answer against a brute
recomputation over the tuples inserted so far.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.schema.builder import build_star_schema
from repro.workload.data import generate_fact_table
from repro.workload.generator import EQPR, QueryGenerator
from tests.conftest import canon_rows


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 100),
    batches=st.lists(st.integers(1, 60), min_size=1, max_size=4),
    reorganize_after=st.integers(0, 3),
)
def test_interleaved_updates_and_queries(seed, batches, reorganize_after):
    schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
    space = ChunkSpace(schema, 0.3)
    base = generate_fact_table(schema, 600, seed=seed)
    engine = BackendEngine.build(
        schema, space, base, page_size=1024, buffer_pool_pages=8
    )
    manager = ChunkCacheManager(
        schema, space, engine, ChunkCache(500_000)
    )
    generator = QueryGenerator(schema, seed=seed + 1, max_grouped_dims=2)

    for index, batch_size in enumerate(batches):
        # A few queries to warm/populate the cache.
        for query in generator.stream(3, EQPR):
            answer = manager.answer(query)
            expected, _ = engine.answer(query, "scan")
            assert canon_rows(answer.rows) == canon_rows(expected)
        # A batch of updates arrives.
        fresh = generate_fact_table(
            schema, batch_size, seed=1000 + seed + index
        )
        affected = engine.append_records(fresh)
        manager.invalidate_base_chunks(affected)
        if index == reorganize_after:
            engine.reorganize()
        # Queries must reflect the new data immediately.
        for query in generator.stream(3, EQPR):
            answer = manager.answer(query)
            expected, _ = engine.answer(query, "scan")
            assert canon_rows(answer.rows) == canon_rows(expected)


def test_forgotten_invalidation_detected():
    """Sanity: without invalidation, stale answers really do appear.

    This guards the test above against vacuously passing (if answers
    never depended on invalidation, the interleaved test would prove
    nothing).
    """
    schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
    space = ChunkSpace(schema, 0.3)
    base = generate_fact_table(schema, 600, seed=1)
    engine = BackendEngine.build(schema, space, base, page_size=1024)
    manager = ChunkCacheManager(
        schema, space, engine, ChunkCache(500_000)
    )
    from repro.query.model import StarQuery

    query = StarQuery.build(
        schema, (1, 1), aggregates=[("v", "count")]
    )
    manager.answer(query)
    engine.append_records(generate_fact_table(schema, 100, seed=2))
    # No invalidation: the cached (stale) answer comes back.
    stale = manager.answer(query)
    assert int(stale.rows["count_v"].sum()) == 600
    # After invalidation the fresh count appears.
    manager.cache.clear()
    fresh = manager.answer(query)
    assert int(fresh.rows["count_v"].sum()) == 700
