"""Full-stack integration tests.

The single most important invariant of the whole system: **every query
answered through any cache manager equals the backend's direct answer**,
regardless of cache state, policy, stream order, or chunk geometry.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.core.query_cache import QueryCacheManager
from repro.query.model import StarQuery
from repro.schema.builder import build_star_schema
from repro.workload.data import generate_fact_table
from repro.workload.generator import EQPR, PROXIMITY, QueryGenerator
from tests.conftest import canon_rows


@pytest.fixture(scope="module", params=["lru", "clock", "benefit"])
def chunk_manager(request, small_schema, small_records):
    space = ChunkSpace(small_schema, 0.25)
    engine = BackendEngine.build(
        small_schema, space, small_records, page_size=1024,
        buffer_pool_pages=16,
    )
    return ChunkCacheManager(
        small_schema, space, engine,
        ChunkCache(2_500, request.param),
    )


class TestEveryAnswerCorrectUnderChurn:
    def test_chunk_scheme_long_stream(self, small_schema, chunk_manager):
        """60 queries with a tight cache (evictions!) all stay correct."""
        generator = QueryGenerator(small_schema, seed=23)
        for index, query in enumerate(generator.stream(60, EQPR)):
            answer = chunk_manager.answer(query)
            if index % 3 == 0:
                expected, _ = chunk_manager.backend.answer(query, "scan")
                assert canon_rows(answer.rows) == canon_rows(expected), (
                    f"query {index}: {query}"
                )
        assert chunk_manager.cache.stats.evictions > 0, (
            "test needs churn to be meaningful"
        )

    def test_query_scheme_long_stream(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(
            small_schema, space, small_records, page_size=1024
        )
        manager = QueryCacheManager(small_schema, engine, 40_000)
        generator = QueryGenerator(small_schema, seed=29)
        for index, query in enumerate(generator.stream(40, PROXIMITY)):
            answer = manager.answer(query)
            if index % 3 == 0:
                expected, _ = engine.answer(query, "scan")
                assert canon_rows(answer.rows) == canon_rows(expected)


class TestSchemesAgreeWithEachOther:
    def test_same_stream_same_answers(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(
            small_schema, space, small_records, page_size=1024
        )
        chunk_mgr = ChunkCacheManager(
            small_schema, space, engine, ChunkCache(200_000)
        )
        query_mgr = QueryCacheManager(small_schema, engine, 200_000)
        generator = QueryGenerator(small_schema, seed=31)
        for query in generator.stream(25, EQPR):
            a = chunk_mgr.answer(query)
            b = query_mgr.answer(query)
            assert canon_rows(a.rows) == canon_rows(b.rows)


class TestChunkSchemeOutperformsWithLocality:
    def test_headline_claim(self, paper_schema, paper_records):
        """The paper's core claim holds end to end on the Table 1 schema."""
        space = ChunkSpace(paper_schema, 0.2)
        engine = BackendEngine.build(
            paper_schema, space, paper_records, buffer_pool_pages=32
        )
        generator = QueryGenerator(paper_schema, seed=7)
        stream = generator.stream(120, PROXIMITY)
        budget = 2_000_000

        chunk_mgr = ChunkCacheManager(
            paper_schema, space, engine, ChunkCache(budget)
        )
        for query in stream:
            chunk_mgr.answer(query)

        engine.buffer_pool.flush()
        engine.disk.reset_stats()
        query_mgr = QueryCacheManager(paper_schema, engine, budget)
        for query in stream:
            query_mgr.answer(query)

        assert (
            chunk_mgr.metrics.cost_saving_ratio()
            > query_mgr.metrics.cost_saving_ratio()
        )
        assert (
            chunk_mgr.metrics.mean_time()
            < query_mgr.metrics.mean_time()
        )


@settings(max_examples=15, deadline=None)
@given(data=st.data())
def test_random_geometry_random_queries_always_correct(data):
    """Random schema geometry + random query sequences stay correct."""
    cards0 = [2, data.draw(st.integers(4, 8), label="d0")]
    cards1 = [3, data.draw(st.integers(3, 9), label="d1")]
    schema = build_star_schema(
        [cards0, cards1],
        fanout="random",
        seed=data.draw(st.integers(0, 50), label="fanout_seed"),
    )
    space = ChunkSpace(
        schema, data.draw(st.sampled_from([0.2, 0.4, 0.8]), label="ratio")
    )
    records = generate_fact_table(
        schema, data.draw(st.integers(50, 400), label="n"),
        seed=data.draw(st.integers(0, 50), label="data_seed"),
    )
    engine = BackendEngine.build(
        schema, space, records, page_size=1024, buffer_pool_pages=8
    )
    manager = ChunkCacheManager(
        schema, space, engine,
        ChunkCache(data.draw(st.sampled_from([0, 5_000, 1_000_000]),
                             label="cache")),
    )
    generator = QueryGenerator(
        schema, seed=data.draw(st.integers(0, 99), label="query_seed"),
        max_grouped_dims=2,
    )
    for query in generator.stream(6, EQPR):
        answer = manager.answer(query)
        expected, _ = engine.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)
