"""Kill-and-reopen integration tests for the persistent 2-tier cache.

The restart contract (``docs/TIERING.md``): a stack reopened on an
existing chunk log starts *warm* — its L1 is refilled benefit-first
from the L2 manifest, so the same workload sees a strictly better hit
ratio than a cold start — while answers stay bit-identical to an
uninterrupted run, and a damaged log never takes the stack down: it
degrades to a clean cold start.
"""

import pytest

from repro.api import StackConfig, build_stack
from repro.workload.generator import EQPR, QueryGenerator
from tests.conftest import canon_rows

QUERIES = 40
SEED = 31


def config_for(persist_path):
    return StackConfig(
        chunk_ratio=0.25,
        cache_bytes=2_500,
        page_size=1024,
        buffer_pool_pages=16,
        cache_tiers=2,
        persist_path=persist_path,
    )


def run_stream(stack, schema):
    """Answer the fixed stream; returns (answers, hits, misses)."""
    generator = QueryGenerator(schema, seed=SEED)
    answers = [
        canon_rows(stack.manager.answer(query).rows)
        for query in generator.stream(QUERIES, EQPR)
    ]
    stats = stack.cache.stats
    return answers, stats.hits, stats.misses


@pytest.fixture(scope="module")
def cold_run(small_schema, small_records, tmp_path_factory):
    """One cold run on a fresh log; the log file survives the 'kill'."""
    path = str(tmp_path_factory.mktemp("restart") / "chunklog.bin")
    stack = build_stack(small_schema, small_records, config_for(path))
    answers, hits, misses = run_stream(stack, small_schema)
    tiers = stack.cache.tiers()
    stack.close()  # flushes the log: the "kill" point
    return {
        "path": path,
        "answers": answers,
        "hits": hits,
        "misses": misses,
        "tiers": tiers,
    }


class TestWarmRestart:
    def test_cold_run_spilled(self, cold_run):
        # Preconditions: the budget is tight enough that the cold run
        # demoted evictions into the log — otherwise a restart has
        # nothing to warm from and this suite tests nothing.
        assert cold_run["tiers"]["l2"]["spills"] > 0
        assert cold_run["misses"] > 0

    def test_warm_start_beats_cold_start(
        self, cold_run, small_schema, small_records
    ):
        stack = build_stack(
            small_schema, small_records, config_for(cold_run["path"])
        )
        try:
            warm_loaded = stack.cache.tiers()["l2"]["warm_loaded"]
            assert warm_loaded > 0  # L1 was refilled from the manifest
            answers, hits, misses = run_stream(stack, small_schema)
            cold_total = cold_run["hits"] + cold_run["misses"]
            warm_total = hits + misses
            assert warm_total == cold_total  # same stream
            assert hits / warm_total > cold_run["hits"] / cold_total
            # Bit-identical answers: restarting changes economics, not
            # results (vs. the uninterrupted cold run's answers).
            assert answers == cold_run["answers"]
        finally:
            stack.close()

    def test_restart_of_a_restart_still_serves(
        self, cold_run, small_schema, small_records
    ):
        stack = build_stack(
            small_schema, small_records, config_for(cold_run["path"])
        )
        try:
            answers, _, _ = run_stream(stack, small_schema)
            assert answers == cold_run["answers"]
        finally:
            stack.close()


class TestDamagedLogDegrades:
    def test_corrupt_header_is_a_clean_cold_start(
        self, cold_run, small_schema, small_records, tmp_path
    ):
        path = str(tmp_path / "chunklog.bin")
        with open(cold_run["path"], "rb") as src:
            raw = src.read()
        with open(path, "wb") as dst:
            dst.write(b"GARBAGE!" + raw[8:])
        stack = build_stack(small_schema, small_records, config_for(path))
        try:
            tiered = stack.cache
            assert tiered.log.recovery.header_reset is True
            assert tiered.tiers()["l2"]["warm_loaded"] == 0
            answers, hits, misses = run_stream(stack, small_schema)
            # Indistinguishable from the cold run: same answers, same
            # economics — degraded, never broken.
            assert answers == cold_run["answers"]
            assert (hits, misses) == (cold_run["hits"], cold_run["misses"])
        finally:
            stack.close()

    def test_truncated_tail_keeps_the_valid_prefix(
        self, cold_run, small_schema, small_records, tmp_path
    ):
        path = str(tmp_path / "chunklog.bin")
        with open(cold_run["path"], "rb") as src:
            raw = src.read()
        with open(path, "wb") as dst:
            dst.write(raw[:-7])  # tear the last record
        stack = build_stack(small_schema, small_records, config_for(path))
        try:
            tiered = stack.cache
            assert tiered.log.recovery.header_reset is False
            assert tiered.log.recovery.truncated_bytes > 0
            answers, _, _ = run_stream(stack, small_schema)
            assert answers == cold_run["answers"]
        finally:
            stack.close()
