"""Edge cases and failure injection across the whole stack.

Degenerate geometries (single-level hierarchies, single members, one
dimension), extreme budgets (one-frame buffer pool, zero-byte cache),
and extreme chunk ratios must all remain *correct* — performance
pathologies are fine, wrong answers are not.
"""

import numpy as np
import pytest

from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.query.model import StarQuery
from repro.schema.builder import build_star_schema
from repro.workload.data import generate_fact_table
from repro.workload.generator import EQPR, QueryGenerator
from tests.conftest import canon_rows


def build_stack(schema, num_tuples, ratio, cache_bytes=1_000_000,
                page_size=1024, pool_pages=4, seed=3):
    space = ChunkSpace(schema, ratio)
    records = generate_fact_table(schema, num_tuples, seed=seed)
    engine = BackendEngine.build(
        schema, space, records, page_size=page_size,
        buffer_pool_pages=pool_pages,
    )
    manager = ChunkCacheManager(
        schema, space, engine, ChunkCache(cache_bytes)
    )
    return engine, manager


def assert_all_queries_correct(schema, engine, manager, n=8, seed=5):
    generator = QueryGenerator(schema, seed=seed, max_grouped_dims=2)
    for query in generator.stream(n, EQPR):
        answer = manager.answer(query)
        expected, _ = engine.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected), str(query)


class TestDegenerateSchemas:
    def test_single_dimension(self):
        schema = build_star_schema([[3, 9]], measure_names=("v",))
        engine, manager = build_stack(schema, 500, 0.3)
        assert_all_queries_correct(schema, engine, manager)

    def test_single_level_hierarchies(self):
        schema = build_star_schema([[7], [5]], measure_names=("v",))
        engine, manager = build_stack(schema, 400, 0.4)
        assert_all_queries_correct(schema, engine, manager)

    def test_single_member_dimension(self):
        schema = build_star_schema([[1], [6]], measure_names=("v",))
        engine, manager = build_stack(schema, 300, 0.5)
        query = StarQuery.build(schema, (1, 1))
        answer = manager.answer(query)
        expected, _ = engine.answer(query, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_deep_skinny_hierarchy(self):
        schema = build_star_schema([[1, 2, 4, 8, 16]], measure_names=("v",))
        engine, manager = build_stack(schema, 400, 0.3)
        assert_all_queries_correct(schema, engine, manager)

    def test_five_dimensions(self):
        schema = build_star_schema(
            [[2, 4], [3], [2, 6], [4], [2, 4]], measure_names=("v",)
        )
        engine, manager = build_stack(schema, 600, 0.5)
        assert_all_queries_correct(schema, engine, manager, n=5)


class TestExtremeGeometry:
    def test_ratio_one_single_chunk_per_level(self):
        schema = build_star_schema([[4, 8], [3, 6]], measure_names=("v",))
        engine, manager = build_stack(schema, 400, 1.0)
        # With ratio 1.0, chunking degenerates toward one chunk per level
        # block — still correct.
        assert_all_queries_correct(schema, engine, manager)

    def test_one_member_per_chunk(self):
        schema = build_star_schema([[4, 8], [3, 6]], measure_names=("v",))
        space = ChunkSpace(
            schema,
            {"D0": {1: 1, 2: 1}, "D1": {1: 1, 2: 1}},
        )
        records = generate_fact_table(schema, 400, seed=4)
        engine = BackendEngine.build(
            schema, space, records, page_size=1024
        )
        manager = ChunkCacheManager(
            schema, space, engine, ChunkCache(1_000_000)
        )
        assert_all_queries_correct(schema, engine, manager)


class TestExtremeBudgets:
    def test_one_frame_buffer_pool(self):
        schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
        engine, manager = build_stack(schema, 800, 0.3, pool_pages=1)
        assert_all_queries_correct(schema, engine, manager)

    def test_zero_byte_cache(self):
        schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
        engine, manager = build_stack(schema, 500, 0.3, cache_bytes=0)
        assert_all_queries_correct(schema, engine, manager)
        assert len(manager.cache) == 0

    def test_tiny_cache_with_all_extensions(self):
        schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
        space = ChunkSpace(schema, 0.3)
        records = generate_fact_table(schema, 500, seed=6)
        engine = BackendEngine.build(schema, space, records, page_size=1024)
        manager = ChunkCacheManager(
            schema, space, engine, ChunkCache(1500),
            aggregate_in_cache=True, prefetch_drilldown=True,
        )
        assert_all_queries_correct(schema, engine, manager)


class TestEmptyAndSparseData:
    def test_empty_fact_table(self):
        schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
        space = ChunkSpace(schema, 0.3)
        records = generate_fact_table(schema, 0)
        engine = BackendEngine.build(schema, space, records, page_size=1024)
        manager = ChunkCacheManager(
            schema, space, engine, ChunkCache(1_000_000)
        )
        query = StarQuery.build(schema, (1, 1))
        answer = manager.answer(query)
        assert len(answer.rows) == 0

    def test_single_tuple(self):
        schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
        space = ChunkSpace(schema, 0.3)
        records = generate_fact_table(schema, 1, seed=7)
        engine = BackendEngine.build(schema, space, records, page_size=1024)
        manager = ChunkCacheManager(
            schema, space, engine, ChunkCache(1_000_000)
        )
        query = StarQuery.build(
            schema, (0, 0), aggregates=[("v", "count")]
        )
        answer = manager.answer(query)
        assert int(answer.rows["count_v"][0]) == 1

    def test_highly_skewed_data(self):
        """All tuples in one cell: most chunks empty, one packed."""
        schema = build_star_schema([[3, 9], [2, 8]], measure_names=("v",))
        space = ChunkSpace(schema, 0.3)
        from repro.storage.record import fact_record_format

        fmt = fact_record_format(schema)
        records = fmt.empty(1000)
        records["D0"] = 4
        records["D1"] = 2
        records["v"] = 1.0
        engine = BackendEngine.build(schema, space, records, page_size=1024)
        manager = ChunkCacheManager(
            schema, space, engine, ChunkCache(1_000_000)
        )
        assert_all_queries_correct(schema, engine, manager)
