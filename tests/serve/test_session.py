"""Tests for repro.serve.session — the concurrent stream executor."""

import time
from types import SimpleNamespace

import pytest

from repro.exceptions import ServeError
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    run_stream,
)
from repro.experiments.multiuser import user_streams
from repro.serve import FAIR, FREE, ServeSession, ShardedChunkCache
from repro.workload.stream import QueryStream, interleave_streams


def totals(metrics):
    """Bit-exact fingerprint of a run's accounting totals."""
    return repr(
        (
            metrics.cost_saving_ratio(),
            metrics.mean_time(),
            metrics.total_pages_read(),
            len(metrics),
        )
    )


@pytest.fixture(scope="module")
def system():
    return get_system(SMOKE_SCALE)


@pytest.fixture(scope="module")
def streams(system):
    return user_streams(system, num_users=4, per_user=25)


@pytest.fixture(scope="module")
def sequential(system, streams):
    """The reference sequential run over the canonical interleave."""
    ordered = sorted(streams, key=lambda stream: stream.name)
    combined = interleave_streams("all-users", ordered)
    manager = make_chunk_manager(system)
    metrics = run_stream(manager, combined)
    return totals(metrics), repr(list(metrics.records))


def serve_run(system, streams, **kwargs):
    cache = ShardedChunkCache(system.cache_bytes, num_shards=1)
    manager = make_chunk_manager(system, cache=cache)
    session = ServeSession(manager, streams, **kwargs)
    return session.run()


class TestFairDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_totals_bit_identical_to_sequential(
        self, system, streams, sequential, workers
    ):
        report = serve_run(system, streams, max_workers=workers)
        seq_totals, seq_records = sequential
        assert totals(report.metrics) == seq_totals
        assert repr(list(report.metrics.records)) == seq_records

    def test_worker_count_capped_at_stream_count(self, system, streams):
        report = serve_run(system, streams, max_workers=16)
        assert report.max_workers == len(streams)

    def test_simulated_speedup_with_more_workers(self, system, streams):
        one = serve_run(system, streams, max_workers=1)
        four = serve_run(system, streams, max_workers=4)
        assert one.simulated_makespan > four.simulated_makespan
        assert four.simulated_throughput > one.simulated_throughput
        # One worker's makespan is the whole stream's simulated time.
        assert repr(one.simulated_makespan) == repr(
            sum(r.time for r in one.metrics.records)
        )


class TestReportShape:
    @pytest.fixture(scope="class")
    def report(self, system, streams):
        return serve_run(system, streams, max_workers=2)

    def test_per_stream_metrics(self, report, streams):
        assert sorted(report.per_stream) == sorted(s.name for s in streams)
        per_user = len(streams[0])
        for name, metrics in report.per_stream.items():
            assert len(metrics) == per_user
        assert sum(map(len, report.per_stream.values())) == report.queries

    def test_contention_counters(self, report):
        backend = report.contention["backend"]
        assert backend["lock_acquisitions"] > 0
        assert backend["lock_wait_seconds"] >= 0.0
        cache = report.contention["cache"]
        assert cache["num_shards"] == 1
        assert cache["lock_acquisitions"] > 0

    def test_lock_wait_bucket_in_stage_summary(self, report):
        summary = report.metrics.stage_summary()
        assert summary  # the pipeline traced its stages
        for stage in summary.values():
            assert "lock_wait_seconds" in stage
            assert stage["lock_wait_seconds"] >= 0.0

    def test_simulated_worker_seconds_per_worker(self, report):
        assert len(report.simulated_worker_seconds) == 2
        assert report.simulated_makespan == max(
            report.simulated_worker_seconds
        )
        assert report.wall_seconds > 0.0


class TestFreeSchedule:
    def test_completes_and_conserves(self, system, streams):
        cache = ShardedChunkCache(system.cache_bytes, num_shards=4)
        manager = make_chunk_manager(system, cache=cache)
        reads_before = system.backend.disk.stats.reads
        session = ServeSession(
            manager, streams, schedule=FREE, timeout_seconds=120.0
        )
        report = session.run()
        assert report.queries == sum(len(s) for s in streams)
        # Conservation holds under any interleaving: records account
        # for every page the disk served, exactly.
        delta = system.backend.disk.stats.reads - reads_before
        assert report.metrics.total_pages_read() == delta
        cache.check_conservation()

    def test_describe_cache_surfaces_shard_contention(self, system, streams):
        cache = ShardedChunkCache(system.cache_bytes, num_shards=4)
        manager = make_chunk_manager(system, cache=cache)
        ServeSession(
            manager, streams, schedule=FREE, timeout_seconds=120.0
        ).run()
        described = manager.describe_cache()
        shards = described["shards"]
        assert shards["num_shards"] == 4
        assert len(shards["per_shard"]) == 4
        assert shards["lock_acquisitions"] > 0

    def test_checkpoint_callback_fires(self, system, streams):
        seen = []
        cache = ShardedChunkCache(system.cache_bytes, num_shards=2)
        manager = make_chunk_manager(system, cache=cache)
        session = ServeSession(
            manager,
            streams,
            schedule=FREE,
            checkpoint_every=25,
            on_checkpoint=seen.append,
            timeout_seconds=120.0,
        )
        report = session.run()
        assert report.checkpoints == report.queries // 25
        assert len(seen) == report.checkpoints
        assert all(count % 25 == 0 for count in seen)


class TestValidation:
    def make(self, streams=None, **kwargs):
        manager = SimpleNamespace()
        if streams is None:
            streams = [QueryStream(name="a", queries=())]
        return ServeSession(manager, streams, **kwargs)

    def test_rejects_empty_streams(self):
        with pytest.raises(ServeError):
            self.make(streams=[])

    def test_rejects_duplicate_names(self):
        streams = [
            QueryStream(name="a", queries=()),
            QueryStream(name="a", queries=()),
        ]
        with pytest.raises(ServeError):
            self.make(streams=streams)

    def test_rejects_unknown_schedule(self):
        with pytest.raises(ServeError):
            self.make(schedule="chaotic")

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ServeError):
            self.make(timeout_seconds=0.0)

    def test_rejects_zero_workers(self):
        with pytest.raises(ServeError):
            self.make(max_workers=0)

    def test_schedules_are_fair_and_free(self):
        assert FAIR == "fair"
        assert FREE == "free"


class _SlowPipeline:
    """A pipeline whose every query takes longer than the deadline."""

    def __init__(self, delay):
        self.delay = delay

    def execute(self, query):
        time.sleep(self.delay)
        return SimpleNamespace(
            record=SimpleNamespace(full_cost=0.0, time=0.0), trace=None
        )


class TestTimeout:
    def test_deadline_becomes_serve_error(self):
        manager = SimpleNamespace(
            pipeline=_SlowPipeline(delay=0.4),
            backend=SimpleNamespace(
                lock_wait_recorder=None,
                lock_wait_seconds=0.0,
                lock_acquisitions=0,
            ),
            cache=None,
        )
        stream = QueryStream(name="slow", queries=(object(), object()))
        session = ServeSession(
            manager, [stream], timeout_seconds=0.15
        )
        started = time.perf_counter()
        with pytest.raises(ServeError):
            session.run()
        # The guard fired at the deadline, not after the full workload.
        assert time.perf_counter() - started < 5.0
