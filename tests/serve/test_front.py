"""The async admission front door — tier-1 gate for coalesced serving.

Pins the front door's three contracts at smoke scale:

- **determinism** — the FrontReport digest is a pure function of
  (workload, fault seed, config): identical at 1, 2 and 4 workers and
  across back-to-back runs;
- **conservation** — ``pages_read + failed_pages`` equals the disk
  read delta exactly, with coalesced waiters charging zero pages (the
  flight leader's fetch carries them all) and shed queries charging
  nothing at all;
- **typed degradation** — under fault injection every coalesced waiter
  of a failed fetch receives the *same* typed failure as the leader,
  and every answered query replays fault-free to the same rows.
"""

from dataclasses import replace

import pytest

from repro.exceptions import ServeError
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.frontjob import duplicate_streams
from repro.experiments.harness import get_system, make_chunk_manager
from repro.faults import FaultInjector, FaultPlan, standard_specs
from repro.serve import FrontConfig, FrontSession, run_front

NUM_STREAMS = 4
PER_USER = 6
CONFIG = FrontConfig(window=4, timeout_seconds=150.0)
CHAOS_SEED = 20260807


def _system_and_streams():
    system = get_system(SMOKE_SCALE)
    streams = duplicate_streams(
        system, num_users=NUM_STREAMS, per_user=PER_USER
    )
    return system, streams


def _injector():
    return FaultInjector(
        FaultPlan(seed=CHAOS_SEED, specs=standard_specs("mid"))
    )


class TestDeterminism:
    def test_digest_pure_in_worker_count_and_repetition(self):
        system, streams = _system_and_streams()
        digests = []
        for workers in (1, 2, 4, 4):
            report = run_front(
                make_chunk_manager(system),
                streams,
                replace(CONFIG, max_workers=workers),
            )
            digests.append(report.digest)
        assert len(set(digests)) == 1

    def test_windows_log_is_the_admission_order(self):
        system, streams = _system_and_streams()
        report = run_front(make_chunk_manager(system), streams, CONFIG)
        admitted = [seq for window in report.windows for seq in window]
        # Every admitted query appears exactly once, in seq order
        # within each window, and none exceeds the window size.
        assert sorted(admitted) == list(range(report.queries))
        for window in report.windows:
            assert 1 <= len(window) <= CONFIG.window
            assert list(window) == sorted(window)

    def test_report_shape(self):
        system, streams = _system_and_streams()
        report = run_front(make_chunk_manager(system), streams, CONFIG)
        assert report.queries == NUM_STREAMS * PER_USER
        assert report.window_size == CONFIG.window
        assert set(report.per_stream) == {s.name for s in streams}
        assert sum(len(m) for m in report.per_stream.values()) == (
            report.queries
        )
        assert len(report.metrics) == report.queries
        assert report.wrong_answers == 0


class TestCoalescing:
    def test_coalescing_cuts_physical_pages(self):
        system, streams = _system_and_streams()
        baseline = run_front(
            make_chunk_manager(system),
            streams,
            replace(CONFIG, coalesce=False),
        )
        coalesced = run_front(
            make_chunk_manager(system), streams, CONFIG
        )
        assert coalesced.pages_read < baseline.pages_read
        assert coalesced.flights > 0
        assert coalesced.coalesced_chunks >= coalesced.flights
        assert baseline.flights == 0 and baseline.shared_pages == 0

    def test_conservation_holds_on_both_sides(self):
        system, streams = _system_and_streams()
        for coalesce in (False, True):
            report = run_front(
                make_chunk_manager(system),
                streams,
                replace(CONFIG, coalesce=coalesce),
            )
            assert report.failed_pages == 0
            assert report.pages_read == report.disk_read_delta
            assert report.pages_read > 0
            assert report.deep_checks > 0


class TestBackpressure:
    def test_shed_is_deterministic_and_conserving(self):
        system, streams = _system_and_streams()
        config = replace(
            CONFIG, window=2, queue_limit=2, arrivals_per_tick=3
        )
        first = run_front(make_chunk_manager(system), streams, config)
        second = run_front(make_chunk_manager(system), streams, config)
        assert len(first.shed) > 0
        assert first.shed == second.shed
        assert first.digest == second.digest
        # Shed queries never execute: admitted + shed covers the offer.
        assert first.queries + len(first.shed) == (
            NUM_STREAMS * PER_USER
        )
        assert first.pages_read == first.disk_read_delta
        for shed in first.shed:
            assert shed.depth == config.queue_limit

    def test_roomy_queue_sheds_nothing(self):
        system, streams = _system_and_streams()
        report = run_front(make_chunk_manager(system), streams, CONFIG)
        assert report.shed == ()


class TestChaos:
    def test_waiters_inherit_the_leaders_typed_failure(self):
        system, streams = _system_and_streams()
        oracle_manager = make_chunk_manager(system)
        report = run_front(
            make_chunk_manager(system),
            streams,
            replace(CONFIG, max_workers=2),
            injector=_injector(),
            oracle=lambda q: oracle_manager.pipeline.execute(q).rows,
        )
        assert report.failures
        assert report.wrong_answers == 0
        # Exact conservation including wasted I/O of failed attempts.
        assert report.pages_read + report.failed_pages == (
            report.disk_read_delta
        )
        by_message = {}
        for failure in report.failures:
            by_message.setdefault(failure.message, []).append(failure)
        shared = [
            group for group in by_message.values() if len(group) > 1
        ]
        assert shared, "expected at least one coalesced failure group"
        for group in shared:
            kinds = {failure.kind for failure in group}
            assert len(kinds) == 1
            # One leader paid for the attempt; every waiter charged 0.
            zero_page = [f for f in group if f.pages_read == 0]
            assert len(zero_page) == len(group) - 1

    def test_chaos_digest_stable_across_workers(self):
        system, streams = _system_and_streams()
        digests = {
            run_front(
                make_chunk_manager(system),
                streams,
                replace(CONFIG, max_workers=workers),
                injector=_injector(),
            ).digest
            for workers in (1, 2, 4)
        }
        assert len(digests) == 1


class TestValidation:
    def test_rejects_bad_configs(self):
        system, streams = _system_and_streams()
        manager = make_chunk_manager(system)
        for config in (
            FrontConfig(window=0),
            FrontConfig(queue_limit=0),
            FrontConfig(arrivals_per_tick=0),
            FrontConfig(timeout_seconds=0.0),
            FrontConfig(max_workers=0),
        ):
            with pytest.raises(ServeError):
                FrontSession(manager, streams, config)

    def test_rejects_empty_and_duplicate_streams(self):
        system, streams = _system_and_streams()
        manager = make_chunk_manager(system)
        with pytest.raises(ServeError):
            FrontSession(manager, [], CONFIG)
        with pytest.raises(ServeError):
            FrontSession(manager, [streams[0], streams[0]], CONFIG)
