"""Tests for repro.serve.sharded — the lock-striped chunk cache."""

import random
import subprocess
import sys
import zlib

import numpy as np
import pytest

from repro import invariants
from repro.core.cache import ChunkCache, ChunkStore
from repro.core.chunk import CachedChunk, ChunkKey
from repro.core.replacement import make_policy
from repro.exceptions import InvariantViolation, ServeError
from repro.serve import CacheShard, ShardedChunkCache, stable_key_hash


def make_chunk(number=0, rows=4, benefit=1.0, groupby=(1, 1)):
    data = np.zeros(rows, dtype=[("D0", "i4"), ("sum_v", "f8")])
    key = ChunkKey(groupby, number, (("v", "sum"),))
    return CachedChunk(key=key, rows=data, benefit=benefit)


class TestStableKeyHash:
    def test_is_crc32_of_canonical_rendering(self):
        key = ChunkKey((2, 1), 7, (("v", "sum"),), frozenset({"b", "a"}))
        canonical = repr(((2, 1), 7, (("v", "sum"),), ("a", "b")))
        assert stable_key_hash(key) == zlib.crc32(canonical.encode("utf-8"))

    def test_predicate_set_order_does_not_matter(self):
        # frozensets built in different orders are equal, but the point
        # is the canonicalisation sorts them before hashing.
        a = ChunkKey((1, 1), 0, (("v", "sum"),), frozenset(["x", "y", "z"]))
        b = ChunkKey((1, 1), 0, (("v", "sum"),), frozenset(["z", "y", "x"]))
        assert stable_key_hash(a) == stable_key_hash(b)

    def test_stable_across_hash_randomization(self):
        # builtin hash() of strings changes with PYTHONHASHSEED; shard
        # placement must not.  Compute the hash in two subprocesses with
        # different seeds and require the same answer.
        program = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.core.chunk import ChunkKey\n"
            "from repro.serve import stable_key_hash\n"
            "key = ChunkKey((3, 2), 11, (('v', 'sum'),),"
            " frozenset({'p', 'q'}))\n"
            "print(stable_key_hash(key))\n"
        )
        outputs = []
        for seed in ("0", "1"):
            proc = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                cwd="/root/repo",
                env={"PYTHONHASHSEED": seed, "PYTHONPATH": "src"},
                check=True,
            )
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
        key = ChunkKey((3, 2), 11, (("v", "sum"),), frozenset({"p", "q"}))
        assert outputs[0] == str(stable_key_hash(key))

    def test_spreads_keys_over_shards(self):
        cache = ShardedChunkCache(1_000_000, num_shards=4)
        hit = {
            cache._shard_for(make_chunk(number=n).key).index
            for n in range(64)
        }
        assert len(hit) > 1  # routing is not degenerate


class TestConstruction:
    def test_rejects_zero_shards(self):
        with pytest.raises(ServeError):
            ShardedChunkCache(1000, num_shards=0)

    def test_rejects_shared_policy_instance_across_shards(self):
        with pytest.raises(ServeError):
            ShardedChunkCache(1000, make_policy("benefit"), num_shards=2)

    def test_policy_instance_fine_for_single_shard(self):
        cache = ShardedChunkCache(1000, make_policy("benefit"), num_shards=1)
        assert cache.num_shards == 1

    def test_policy_factory_builds_one_instance_per_shard(self):
        built = []

        def factory():
            policy = make_policy("benefit")
            built.append(policy)
            return policy

        ShardedChunkCache(1000, factory, num_shards=3)
        assert len(built) == 3
        assert len({id(p) for p in built}) == 3

    def test_budget_split_sums_to_capacity(self):
        cache = ShardedChunkCache(10, num_shards=3)
        capacities = [
            shard["capacity_bytes"]
            for shard in cache.contention()["per_shard"]
        ]
        assert capacities == [4, 3, 3]
        assert sum(capacities) == cache.capacity_bytes

    def test_satisfies_chunk_store_protocol(self):
        assert isinstance(ShardedChunkCache(1000), ChunkStore)
        assert isinstance(ChunkCache(1000), ChunkStore)


class TestSingleShardBitIdentity:
    """num_shards=1 must behave exactly like a plain ChunkCache."""

    def test_randomized_op_trace_matches_plain_cache(self):
        chunk_size = make_chunk().size_bytes
        budget = chunk_size * 5 + 3  # forces evictions
        plain = ChunkCache(budget)
        sharded = ShardedChunkCache(budget, num_shards=1)
        rng = random.Random(1998)
        chunks = [
            make_chunk(number=n, benefit=rng.uniform(0.1, 2.0))
            for n in range(16)
        ]
        for step in range(400):
            chunk = rng.choice(chunks)
            op = rng.randrange(4)
            if op == 0:
                assert plain.put(chunk) == sharded.put(chunk)
            elif op == 1:
                a, b = plain.get(chunk.key), sharded.get(chunk.key)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a is b  # both caches hold the same object
            elif op == 2:
                assert plain.invalidate(chunk.key) == sharded.invalidate(
                    chunk.key
                )
            else:
                assert (chunk.key in plain) == (chunk.key in sharded)
            assert plain.used_bytes == sharded.used_bytes
            assert len(plain) == len(sharded)
            assert plain.keys() == sharded.keys()
        assert repr(plain.stats) == repr(sharded.stats)
        plain_snap = plain.snapshot()
        sharded_snap = sharded.snapshot()
        assert [k for k, _ in plain_snap] == [k for k, _ in sharded_snap]
        assert all(
            a is b
            for (_, a), (_, b) in zip(plain_snap, sharded_snap, strict=True)
        )

    def test_clear_matches(self):
        plain = ChunkCache(100_000)
        sharded = ShardedChunkCache(100_000, num_shards=1)
        for n in range(6):
            chunk = make_chunk(number=n)
            plain.put(chunk)
            sharded.put(chunk)
        plain.clear()
        sharded.clear()
        assert len(sharded) == 0
        assert sharded.used_bytes == 0
        assert repr(plain.stats) == repr(sharded.stats)


class TestMultiShard:
    def test_routing_is_stable_and_retrievable(self):
        cache = ShardedChunkCache(1_000_000, num_shards=8)
        chunks = [make_chunk(number=n) for n in range(32)]
        for chunk in chunks:
            assert cache.put(chunk)
        for chunk in chunks:
            assert cache.get(chunk.key) is chunk
            assert chunk.key in cache
        assert len(cache) == 32
        assert cache.used_bytes == sum(c.size_bytes for c in chunks)
        assert sorted(map(repr, cache.keys())) == sorted(
            repr(c.key) for c in chunks
        )

    def test_admission_control_is_per_shard(self):
        # Four shards of 1000 bytes each: an entry bigger than its
        # shard's slice is rejected even though the global budget would
        # fit it — exactly the unsharded admission rule, per shard.
        cache = ShardedChunkCache(4000, num_shards=4)
        big = make_chunk(number=99, rows=100)
        assert 1000 < big.size_bytes < cache.capacity_bytes
        assert not cache.put(big)
        assert cache.stats.rejected == 1
        assert big.key not in cache

    def test_used_bytes_tracks_across_shards_after_churn(self):
        chunk_size = make_chunk().size_bytes
        cache = ShardedChunkCache(chunk_size * 6, num_shards=3)
        rng = random.Random(7)
        for step in range(300):
            number = rng.randrange(20)
            if rng.random() < 0.7:
                cache.put(make_chunk(number=number))
            else:
                cache.invalidate(make_chunk(number=number).key)
        resident = sum(e.size_bytes for _, e in cache.snapshot())
        assert cache.used_bytes == resident
        cache.check_conservation()

    def test_stats_sum_over_shards(self):
        cache = ShardedChunkCache(1_000_000, num_shards=4)
        for n in range(10):
            cache.put(make_chunk(number=n))
        for n in range(10):
            assert cache.get(make_chunk(number=n).key) is not None
        cache.get(make_chunk(number=77).key)
        stats = cache.stats
        assert stats.insertions == 10
        assert stats.hits == 10
        assert stats.misses == 1
        assert stats.lookups == 11


class TestConservation:
    def test_check_passes_in_deep_mode(self):
        cache = ShardedChunkCache(100_000, num_shards=4)
        for n in range(12):
            cache.put(make_chunk(number=n))
        previous = invariants.set_mode(invariants.DEEP)
        try:
            cache.check_conservation()
        finally:
            invariants.set_mode(previous)

    def test_catches_global_counter_tampering(self):
        cache = ShardedChunkCache(100_000, num_shards=4)
        for n in range(8):
            cache.put(make_chunk(number=n))
        cache._used_bytes += 1
        with pytest.raises(InvariantViolation):
            cache.check_conservation()

    def test_catches_shard_overcharge_tampering(self):
        cache = ShardedChunkCache(100_000, num_shards=2)
        cache.put(make_chunk())
        shard = cache._shards[0]
        shard.cache._used_bytes = shard.cache.capacity_bytes + 1
        with pytest.raises(InvariantViolation):
            cache.check_conservation()


class TestContention:
    def test_counters_shape(self):
        cache = ShardedChunkCache(100_000, num_shards=4)
        for n in range(8):
            cache.put(make_chunk(number=n))
            cache.get(make_chunk(number=n).key)
        report = cache.contention()
        assert report["num_shards"] == 4
        assert report["lock_acquisitions"] > 0
        assert report["lock_wait_seconds"] >= 0.0
        assert report["hit_skew"] >= 1.0
        per_shard = report["per_shard"]
        assert len(per_shard) == 4
        assert {entry["shard"] for entry in per_shard} == {0, 1, 2, 3}
        for entry in per_shard:
            assert entry["lock_acquisitions"] >= 0
            assert entry["used_bytes"] <= entry["capacity_bytes"]

    def test_skew_zero_before_any_lookup(self):
        report = ShardedChunkCache(1000, num_shards=2).contention()
        assert repr(report["hit_skew"]) == "0.0"

    def test_shard_held_counts_acquisitions(self):
        shard = CacheShard(0, 1000, "benefit")
        with shard.held() as cache:
            assert isinstance(cache, ChunkCache)
        assert shard.lock_acquisitions == 1
        assert not shard.lock.locked()


class TestHitSkewPinning:
    """Pin ``hit_skew`` under a deliberately skewed key workload.

    Baseline for the shard-rebalancing work tracked in ROADMAP: the
    metric must be exactly busiest-shard lookups over the per-shard
    mean, so a rebalancer can be judged against a pinned number.
    """

    def _keys_by_shard(self, cache, count=64):
        by_shard: dict[int, list] = {}
        for n in range(count):
            key = make_chunk(number=n).key
            by_shard.setdefault(cache._shard_for(key).index, []).append(key)
        return by_shard

    def test_skewed_lookups_pin_the_exact_ratio(self):
        cache = ShardedChunkCache(100_000, num_shards=4)
        by_shard = self._keys_by_shard(cache)
        # CRC-32 routing spreads 64 keys over all four shards.
        assert set(by_shard) == {0, 1, 2, 3}
        # 9 lookups hammer one shard, 3 go to another: 12 lookups over
        # 4 shards -> mean 3, busiest 9 -> skew exactly 3.0.
        for _ in range(9):
            cache.get(by_shard[0][0])
        for _ in range(3):
            cache.get(by_shard[1][0])
        report = cache.contention()
        assert repr(report["hit_skew"]) == "3.0"

    def test_uniform_lookups_pin_skew_one(self):
        cache = ShardedChunkCache(100_000, num_shards=4)
        by_shard = self._keys_by_shard(cache)
        for keys in by_shard.values():
            for _ in range(5):
                cache.get(keys[0])
        assert repr(cache.contention()["hit_skew"]) == "1.0"

    def test_misses_count_as_lookups(self):
        # Skew tracks traffic, not hit rate: pure-miss traffic must
        # still register (9+3 misses -> same 3.0 ratio as above).
        cache = ShardedChunkCache(100_000, num_shards=4)
        by_shard = self._keys_by_shard(cache)
        hot, cold = by_shard[0][0], by_shard[1][0]
        assert cache.get(hot) is None
        for _ in range(8):
            cache.get(hot)
        for _ in range(3):
            cache.get(cold)
        per_shard = cache.contention()["per_shard"]
        traffic = sorted(
            entry["hits"] + entry["misses"] for entry in per_shard
        )
        assert traffic == [0, 0, 3, 9]
