"""Determinism regression gates for the serving layer.

Two contracts pinned bit-for-bit (all comparisons are on ``repr``
strings, so any last-ulp drift fails loudly):

1. the multiuser experiment's shared-concurrent arm reproduces the
   sequential shared arm exactly — threading the pipeline must not
   change a single accounting number under the fair schedule, at any
   worker count;
2. pre-existing experiments (Figure 9) are repeatable run to run —
   the serving layer's locks and thread-safety retrofits must not have
   perturbed the single-threaded paths.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import fig9, multiuser
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import (
    get_system,
    make_chunk_manager,
    run_stream,
)
from repro.faults import FaultInjector, FaultPlan, standard_specs
from repro.serve import ChaosConfig, ShardedChunkCache, run_chaos_soak
from repro.workload.stream import interleave_streams


@pytest.fixture(scope="module")
def system():
    return get_system(SMOKE_SCALE)


@pytest.fixture(scope="module")
def streams(system):
    return multiuser.user_streams(system)


def sequential_records(system, streams):
    ordered = sorted(streams, key=lambda stream: stream.name)
    manager = make_chunk_manager(system)
    metrics = run_stream(
        manager, interleave_streams("all-users", ordered)
    )
    return metrics


class TestSharedConcurrentMatchesSequential:
    def test_single_worker_is_bit_identical(self, system, streams):
        sequential = sequential_records(system, streams)
        report = multiuser.run_shared_concurrent(
            system, streams, max_workers=1
        )
        assert repr(list(report.metrics.records)) == repr(
            list(sequential.records)
        )
        assert repr(report.metrics.cost_saving_ratio()) == repr(
            sequential.cost_saving_ratio()
        )
        assert repr(report.metrics.mean_time()) == repr(
            sequential.mean_time()
        )
        assert (
            report.metrics.total_pages_read()
            == sequential.total_pages_read()
        )

    def test_experiment_rows_agree(self):
        result = multiuser.run(SMOKE_SCALE)
        by_config = {row["configuration"]: row for row in result.rows}
        shared = by_config["shared"]
        concurrent = by_config["shared-concurrent"]
        assert repr(shared["csr"]) == repr(concurrent["csr"])
        assert repr(shared["mean_time"]) == repr(concurrent["mean_time"])
        assert shared["pages_read"] == concurrent["pages_read"]


@pytest.fixture(scope="module")
def chaos_streams(system):
    return multiuser.user_streams(system, num_users=4, per_user=8)


class TestChaosDigestIsSeedDeterministic:
    """Property: the chaos digest is a pure function of the seed.

    For any fault-plan seed, running the chaos soak under the fair
    schedule yields the *same* digest on every run and at every worker
    count — the whole point of hashing the plan instead of sampling a
    shared RNG.
    """

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=5, deadline=None)
    def test_same_seed_same_digest_at_any_worker_count(
        self, system, chaos_streams, seed
    ):
        digests = []
        for max_workers in (1, 2, 4):
            cache = ShardedChunkCache(system.cache_bytes, num_shards=4)
            manager = make_chunk_manager(system, cache=cache)
            injector = FaultInjector(
                FaultPlan(seed=seed, specs=standard_specs("mid"))
            )
            report = run_chaos_soak(
                manager,
                chaos_streams,
                injector,
                ChaosConfig(
                    checkpoint_every=10,
                    max_workers=max_workers,
                    timeout_seconds=120.0,
                ),
            )
            digests.append(report.digest)
        assert len(set(digests)) == 1


class TestExistingExperimentsUnperturbed:
    def test_fig9_is_repeatable(self):
        first = fig9.run(SMOKE_SCALE)
        second = fig9.run(SMOKE_SCALE)
        assert first.render() == second.render()
        assert repr(first.rows) == repr(second.rows)

    def test_multiuser_is_repeatable(self):
        first = multiuser.run(SMOKE_SCALE)
        second = multiuser.run(SMOKE_SCALE)
        assert repr(first.rows) == repr(second.rows)
