"""The multi-user soak gate — tier-1 regression test for concurrency.

Eight user streams of 250 queries each race on eight worker threads
against one shared sharded cache with ``REPRO_INVARIANTS=deep`` forced
on.  The run must produce zero invariant violations and account for
every disk page exactly, at every 100-query checkpoint and at the end.
This is the property that must hold under *any* thread interleaving —
the test is a genuine race, not a reproducible schedule.

The run also records a lock-order witness (:mod:`repro.lockorder`):
every nested pair of lock levels actually held by one thread.  The
observed edges must be a subset of the static lock-order graph that
``tools/reprolint`` derives (pinned in ``tests/tools/lockorder.txt``)
— an acquisition order the analyzer did not predict fails this gate
before it can deadlock in production.
"""

from pathlib import Path
from types import SimpleNamespace

import pytest

from repro import invariants, lockorder
from repro.exceptions import ServeError
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import get_system, make_chunk_manager
from repro.experiments.multiuser import user_streams
from repro.serve import ShardedChunkCache, SoakConfig, run_soak

NUM_STREAMS = 8
PER_USER = 250
CHECKPOINT_EVERY = 100
# Hard deadline: a deadlock becomes a ServeError, never a hung suite.
TIMEOUT_SECONDS = 150.0
# The static lock-order graph pinned by tools/reprolint (R009).
STATIC_GRAPH = Path(__file__).resolve().parents[1] / "tools" / "lockorder.txt"


def _static_edges() -> frozenset[tuple[str, str]]:
    edges = set()
    for line in STATIC_GRAPH.read_text().splitlines():
        outer, _, inner = line.partition(" -> ")
        edges.add((outer, inner))
    return frozenset(edges)


def test_multiuser_soak_conserves_everything():
    system = get_system(SMOKE_SCALE)
    streams = user_streams(
        system, num_users=NUM_STREAMS, per_user=PER_USER
    )
    cache = ShardedChunkCache(system.cache_bytes, num_shards=8)
    manager = make_chunk_manager(system, cache=cache)

    previous_mode = invariants.mode()
    with lockorder.capture() as witness_log:
        report = run_soak(
            manager,
            streams,
            SoakConfig(
                checkpoint_every=CHECKPOINT_EVERY,
                timeout_seconds=TIMEOUT_SECONDS,
            ),
        )

    assert report.queries == NUM_STREAMS * PER_USER
    # A checkpoint fired at every 100-query boundary...
    assert report.checkpoints == report.queries // CHECKPOINT_EVERY
    # ...each running the cross-shard conservation check in deep mode.
    assert report.deep_checks > 0
    # Global I/O conservation: worker records account for every page
    # the backend disk actually served — exactly, not approximately.
    assert report.pages_read == report.disk_read_delta
    assert report.pages_read > 0
    # The harness restored the invariant mode it found.
    assert invariants.mode() == previous_mode

    serve = report.serve
    assert serve.schedule == "free"
    assert serve.max_workers == NUM_STREAMS
    assert sorted(serve.per_stream) == [s.name for s in sorted(
        streams, key=lambda s: s.name
    )]
    contention = serve.contention["cache"]
    assert contention["num_shards"] == 8
    assert contention["lock_acquisitions"] > 0

    # Static/dynamic cross-check: every lock-order edge a thread
    # actually exercised was predicted by the static analyzer.  The
    # witness must also have seen the shard lock at all — an empty log
    # would mean the instrumentation fell off the hot path.
    observed = witness_log.edges()
    unexpected = observed - _static_edges()
    assert not unexpected, (
        f"runtime lock orders not in the static graph: {sorted(unexpected)}"
        " — regenerate tests/tools/lockorder.txt if this is intentional"
    )
    assert ("shard", "accounting") in observed


def test_soak_requires_a_conservation_checking_store():
    manager = SimpleNamespace(cache=object())
    with pytest.raises(ServeError):
        run_soak(manager, [])


def test_two_tier_soak_witnesses_the_tiering_lock_order():
    """The 2-tier soak under real thread interleavings: conservation
    still exact, and every runtime lock-order edge — now including the
    spill path's shard -> tiered -> l2 nesting — was predicted by
    the static graph."""
    from repro.core.tiered import TieredChunkCache
    from repro.storage.chunklog import ChunkLog

    system = get_system(SMOKE_SCALE)
    streams = user_streams(system, num_users=4, per_user=100)
    # A deliberately tight L1 so evictions (and therefore spills and
    # promotions) happen under concurrency.
    l1 = ShardedChunkCache(system.cache_bytes // 4, num_shards=4)
    cache = TieredChunkCache(l1, ChunkLog(page_size=1024))
    manager = make_chunk_manager(system, cache=cache)

    with lockorder.capture() as witness_log:
        report = run_soak(
            manager,
            streams,
            SoakConfig(
                checkpoint_every=CHECKPOINT_EVERY,
                timeout_seconds=TIMEOUT_SECONDS,
            ),
        )

    assert report.queries == 4 * 100
    assert report.pages_read == report.disk_read_delta
    cache.check_conservation()
    assert cache.tiers()["l2"]["spills"] > 0, (
        "test needs spill traffic to witness the tiering lock order"
    )

    observed = witness_log.edges()
    unexpected = observed - _static_edges()
    assert not unexpected, (
        f"runtime lock orders not in the static graph: {sorted(unexpected)}"
        " — regenerate tests/tools/lockorder.txt if this is intentional"
    )
    assert ("shard", "tiered") in observed
    assert ("tiered", "l2") in observed
