"""The multi-user soak gate — tier-1 regression test for concurrency.

Eight user streams of 250 queries each race on eight worker threads
against one shared sharded cache with ``REPRO_INVARIANTS=deep`` forced
on.  The run must produce zero invariant violations and account for
every disk page exactly, at every 100-query checkpoint and at the end.
This is the property that must hold under *any* thread interleaving —
the test is a genuine race, not a reproducible schedule.
"""

from types import SimpleNamespace

import pytest

from repro import invariants
from repro.exceptions import ServeError
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import get_system, make_chunk_manager
from repro.experiments.multiuser import user_streams
from repro.serve import ShardedChunkCache, SoakConfig, run_soak

NUM_STREAMS = 8
PER_USER = 250
CHECKPOINT_EVERY = 100
# Hard deadline: a deadlock becomes a ServeError, never a hung suite.
TIMEOUT_SECONDS = 150.0


def test_multiuser_soak_conserves_everything():
    system = get_system(SMOKE_SCALE)
    streams = user_streams(
        system, num_users=NUM_STREAMS, per_user=PER_USER
    )
    cache = ShardedChunkCache(system.cache_bytes, num_shards=8)
    manager = make_chunk_manager(system, cache=cache)

    previous_mode = invariants.mode()
    report = run_soak(
        manager,
        streams,
        SoakConfig(
            checkpoint_every=CHECKPOINT_EVERY,
            timeout_seconds=TIMEOUT_SECONDS,
        ),
    )

    assert report.queries == NUM_STREAMS * PER_USER
    # A checkpoint fired at every 100-query boundary...
    assert report.checkpoints == report.queries // CHECKPOINT_EVERY
    # ...each running the cross-shard conservation check in deep mode.
    assert report.deep_checks > 0
    # Global I/O conservation: worker records account for every page
    # the backend disk actually served — exactly, not approximately.
    assert report.pages_read == report.disk_read_delta
    assert report.pages_read > 0
    # The harness restored the invariant mode it found.
    assert invariants.mode() == previous_mode

    serve = report.serve
    assert serve.schedule == "free"
    assert serve.max_workers == NUM_STREAMS
    assert sorted(serve.per_stream) == [s.name for s in sorted(
        streams, key=lambda s: s.name
    )]
    contention = serve.contention["cache"]
    assert contention["num_shards"] == 8
    assert contention["lock_acquisitions"] > 0


def test_soak_requires_a_conservation_checking_store():
    manager = SimpleNamespace(cache=object())
    with pytest.raises(ServeError):
        run_soak(manager, [])
