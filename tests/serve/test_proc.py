"""Process-parallel serving — the tier-1 equality and lifecycle gate.

The execution-mode contract: for the same (workload, seed, config),
thread mode, process mode, and any worker count must produce
bit-identical serve totals and chaos/front digests.  The coordinator
keeps all authoritative accounting and replays the thread-mode engine's
I/O step for step (see ``docs/PARALLEL.md``), so these tests pin the
whole determinism argument end to end, plus the wrapper's lifecycle and
failure envelopes.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import (
    PROCESSES,
    QUERY,
    THREADS,
    StackConfig,
    build_cache,
    build_stack,
)
from repro.exceptions import BackendError, ServeError, StackError
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import get_system, make_chunk_manager
from repro.experiments.multiuser import (
    run_shared_concurrent,
    user_streams,
)
from repro.faults import FaultInjector, FaultPlan, standard_specs
from repro.serve import (
    ChaosConfig,
    ProcServeSession,
    ProcessComputeEngine,
    ServeSession,
    SoakConfig,
    run_chaos_soak,
    run_soak,
)
from repro.serve.proc import WorkerPool, _canonical_filters, _route

NUM_USERS = 4
PER_USER = 10
TIMEOUT = 120.0


@pytest.fixture(scope="module")
def system():
    return get_system(SMOKE_SCALE)


@pytest.fixture(scope="module")
def streams(system):
    return user_streams(system, num_users=NUM_USERS, per_user=PER_USER)


@pytest.fixture(scope="module")
def proc_manager(system):
    """One long-lived single-worker process-mode manager."""
    manager = make_chunk_manager(
        system, exec_mode=PROCESSES, proc_workers=1
    )
    yield manager
    manager.backend.close()


def _totals(report):
    return (
        report.metrics.cost_saving_ratio(),
        report.metrics.mean_time(),
        report.metrics.total_pages_read(),
        len(report.metrics.records),
        report.queries,
    )


@pytest.fixture(scope="module")
def thread_totals(system, streams):
    report = run_shared_concurrent(
        system, streams, max_workers=NUM_USERS
    )
    return _totals(report)


class TestServeTotalsEquality:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_mode_matches_thread_mode(
        self, system, streams, thread_totals, workers
    ):
        report = run_shared_concurrent(
            system,
            streams,
            max_workers=NUM_USERS,
            exec_mode=PROCESSES,
            proc_workers=workers,
        )
        assert _totals(report) == thread_totals


class TestChaosDigestEquality:
    def _chaos(self, system, streams, exec_mode, workers):
        cache = build_cache(
            StackConfig(cache_bytes=system.cache_bytes, num_shards=4)
        )
        manager = make_chunk_manager(
            system, cache=cache, exec_mode=exec_mode, proc_workers=workers
        )
        injector = FaultInjector(
            FaultPlan(seed=20260806, specs=standard_specs("mid"))
        )
        try:
            report = run_chaos_soak(
                manager,
                streams,
                injector,
                ChaosConfig(
                    exec_mode=exec_mode, timeout_seconds=TIMEOUT
                ),
            )
        finally:
            if exec_mode == PROCESSES:
                manager.backend.close()
        return report

    def test_digest_identical_across_modes_and_worker_counts(
        self, system, streams
    ):
        baseline = self._chaos(system, streams, THREADS, 1)
        assert baseline.queries + baseline.failures == len(streams) * (
            PER_USER
        )
        for workers in (1, 2, 4):
            report = self._chaos(system, streams, PROCESSES, workers)
            assert report.digest == baseline.digest
            assert report.queries == baseline.queries
            assert report.failures == baseline.failures
            assert report.pages_read == baseline.pages_read
            assert report.failed_pages == baseline.failed_pages
            assert report.fault_counters == baseline.fault_counters


class TestSoakProcessMode:
    def test_free_schedule_soak_conserves_io(self, system, streams):
        cache = build_cache(
            StackConfig(cache_bytes=system.cache_bytes, num_shards=4)
        )
        manager = make_chunk_manager(
            system, cache=cache, exec_mode=PROCESSES, proc_workers=2
        )
        try:
            report = run_soak(
                manager,
                streams,
                SoakConfig(
                    checkpoint_every=10,
                    timeout_seconds=TIMEOUT,
                    exec_mode=PROCESSES,
                ),
            )
        finally:
            manager.backend.close()
        assert report.queries == NUM_USERS * PER_USER
        assert report.pages_read == report.disk_read_delta
        assert report.pages_read > 0
        assert report.deep_checks > 0


class TestStackComposition:
    def test_thread_mode_is_the_default(self):
        assert StackConfig().exec_mode == THREADS

    def test_unknown_exec_mode_rejected(self, system):
        with pytest.raises(StackError):
            build_stack(
                system.schema,
                config=StackConfig(exec_mode="fibers"),
                space=system.space,
                backend=system.backend,
            )

    def test_process_mode_needs_records(self, system):
        with pytest.raises(StackError):
            build_stack(
                system.schema,
                config=StackConfig(exec_mode=PROCESSES),
                space=system.space,
                backend=system.backend,
            )

    def test_process_mode_rejects_query_scheme(self, system):
        with pytest.raises(StackError):
            build_stack(
                system.schema,
                records=system.records,
                config=StackConfig(scheme=QUERY, exec_mode=PROCESSES),
                space=system.space,
                backend=system.backend,
            )

    def test_process_stack_wraps_backend(self, system, proc_manager):
        assert isinstance(proc_manager.backend, ProcessComputeEngine)
        assert proc_manager.backend.inner is system.backend

    def test_stack_close_is_idempotent(self, system):
        stack = build_stack(
            system.schema,
            space=system.space,
            backend=system.backend,
        )
        stack.close()  # thread mode: a no-op, twice
        stack.close()


class TestEngineWrapper:
    def test_mutation_entry_points_are_blocked(self, system, proc_manager):
        backend = proc_manager.backend
        with pytest.raises(BackendError):
            backend.materialize(system.schema.base_groupby)
        with pytest.raises(BackendError):
            backend.append_records(system.records[:1])
        with pytest.raises(BackendError):
            backend.reorganize()

    def test_worker_error_surfaces_as_backend_error(self, proc_manager):
        pool = proc_manager.backend.pool
        bad_groupby = (99, 99, 99)
        pool.stage(bad_groupby, [0], (("v", "sum"),))
        with pytest.raises(BackendError):
            pool.claim(bad_groupby, 0, (("v", "sum"),))

    def test_shares_physical_state_by_reference(self, system, proc_manager):
        backend = proc_manager.backend
        assert backend.disk is system.backend.disk
        assert backend.buffer_pool is system.backend.buffer_pool
        assert backend.chunked_file is system.backend.chunked_file


class TestProcServeSession:
    def test_requires_process_backend(self, system, streams):
        manager = make_chunk_manager(system)
        with pytest.raises(ServeError):
            ProcServeSession(manager, streams)

    def test_rejects_nonpositive_lookahead(self, proc_manager, streams):
        with pytest.raises(ServeError):
            ProcServeSession(proc_manager, streams, lookahead=0)

    def test_is_a_serve_session(self, proc_manager, streams):
        session = ProcServeSession(proc_manager, streams)
        assert isinstance(session, ServeSession)


class TestWorkerPoolEnvelope:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ServeError):
            WorkerPool(spec=None, num_workers=0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ServeError):
            WorkerPool(spec=None, num_workers=1, timeout_seconds=0.0)

    def test_canonical_filters_collapse_no_op_forms(self):
        assert _canonical_filters(None) is None
        assert _canonical_filters((None, None)) is None
        assert _canonical_filters(((0, 3), None)) == ((0, 3), None)

    def test_routing_is_stable(self):
        key = ((2, 1), 7, (("v", "sum"),), None, False)
        index = _route(key, 4)
        assert 0 <= index < 4
        assert all(_route(key, 4) == index for _ in range(10))


class _RecordingQueue:
    """Stands in for a multiprocessing queue; counts shutdown traffic."""

    def __init__(self):
        self.puts = []
        self.closed = 0

    def put(self, item):
        self.puts.append(item)

    def cancel_join_thread(self):
        pass

    def close(self):
        self.closed += 1


class TestWorkerPoolClose:
    def _unstarted_pool(self):
        pool = WorkerPool(spec=None, num_workers=2)
        # Swap the real mp queues for recorders so close() traffic is
        # observable and nothing blocks on queue feeder threads.
        for queue in [*pool._requests, pool._results]:
            queue.cancel_join_thread()
            queue.close()
        pool._requests = [_RecordingQueue(), _RecordingQueue()]
        pool._results = _RecordingQueue()
        return pool

    def test_close_is_idempotent(self):
        pool = self._unstarted_pool()
        pool.close()
        pool.close()
        assert [q.puts for q in pool._requests] == [[None], [None]]
        assert [q.closed for q in pool._requests] == [1, 1]

    def test_racing_closes_run_shutdown_exactly_once(self):
        # Regression: the closed flag used to be checked and set without
        # the pool lock, so two racing close() calls could both observe
        # it unset and both run the shutdown sequence (double sentinel,
        # double queue close).
        for _ in range(20):
            pool = self._unstarted_pool()
            barrier = threading.Barrier(4)

            def racer():
                barrier.wait()
                pool.close()

            threads = [threading.Thread(target=racer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10.0)
            assert [q.puts for q in pool._requests] == [[None], [None]]
            assert pool._results.closed == 1
