"""Engine behaviour: module paths, suppressions, CLI, file discovery."""

from __future__ import annotations

from pathlib import Path

import pytest

from tools.reprolint.__main__ import main
from tools.reprolint.engine import lint_paths, lint_source, module_path_of
from tools.reprolint.rules import ALL_RULES, RULES_BY_CODE


class TestModulePath:
    def test_module_under_src(self):
        assert (
            module_path_of(Path("src/repro/core/metrics.py"))
            == "repro.core.metrics"
        )

    def test_package_init(self):
        assert module_path_of(Path("src/repro/chunks/__init__.py")) == "repro.chunks"

    def test_outside_src_has_no_module(self):
        assert module_path_of(Path("tests/core/test_cache.py")) is None
        assert module_path_of(Path("tools/reprolint/engine.py")) is None


class TestSuppression:
    def test_ignore_comment_silences_named_code(self):
        code = "def f(x=[]):  # reprolint: ignore[R004] test fixture\n    return x\n"
        assert lint_source(code) == []

    def test_ignore_comment_is_code_specific(self):
        code = "def f(x=[]):  # reprolint: ignore[R001] layering waiver\n    return x\n"
        assert [v.code for v in lint_source(code)] == ["R004"]

    def test_multiple_codes_in_one_comment(self):
        code = "def f(x=[]):  # reprolint: ignore[R001, R004] fixture\n    return x\n"
        assert lint_source(code) == []

    def test_bare_waiver_is_a_violation(self):
        code = "def f(x=[]):  # reprolint: ignore[R004]\n    return x\n"
        assert [v.code for v in lint_source(code)] == ["R000"]

    def test_bare_waiver_cannot_suppress_itself(self):
        code = "x = 1  # reprolint: ignore[R000]\n"
        assert [v.code for v in lint_source(code)] == ["R000"]

    def test_malformed_waiver_is_a_violation(self):
        code = "x = 1  # reprolint ignore R004\n"
        assert [v.code for v in lint_source(code)] == ["R000"]

    def test_waiver_inside_string_literal_is_not_policed(self):
        code = 's = "# reprolint: ignore[R004]"\n'
        assert lint_source(code) == []


class TestRegistry:
    def test_all_rules_registered(self):
        assert sorted(RULES_BY_CODE) == [
            "R000", "R001", "R002", "R003", "R004", "R005", "R006",
            "R007", "R008", "R009", "R010", "R011",
        ]

    def test_rules_have_summaries(self):
        for rule in ALL_RULES:
            assert rule.SUMMARY


class TestPathsAndCli:
    def test_lint_paths_walks_directories(self, tmp_path):
        bad = tmp_path / "pkg"
        bad.mkdir()
        (bad / "mod.py").write_text("def f(x={}):\n    return x\n")
        (bad / "__pycache__").mkdir()
        (bad / "__pycache__" / "junk.py").write_text("def g(y=[]):\n    return y\n")
        violations = lint_paths([tmp_path])
        assert [v.code for v in violations] == ["R004"]
        assert "mod.py" in violations[0].path

    def test_lint_paths_reports_syntax_errors(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        seen = []
        lint_paths([tmp_path], on_error=lambda p, e: seen.append(p))
        assert len(seen) == 1

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["--no-cache", str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main(["--no-cache", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "R004" in out

    def test_cli_json_format(self, tmp_path, capsys):
        import json

        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main(["--no-cache", "--format", "json", str(dirty)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert payload["violations"][0]["code"] == "R004"

    def test_cli_github_format(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("try:\n    pass\nexcept:\n    pass\n")
        assert main(["--no-cache", "--format", "github", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert out.startswith("::error file=")
        assert "title=reprolint R004" in out

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R000", "R001", "R002", "R009", "R010"):
            assert code in out

    def test_cli_select_unknown_code_errors(self):
        with pytest.raises(SystemExit):
            main(["--select", "R999", "src"])


class TestRepoGate:
    def test_repo_is_clean(self):
        """The tree itself passes every rule — the suite pins the gate.

        A violation anywhere under ``src/``, ``tests/`` or
        ``benchmarks/`` fails this test with the rendered findings, so
        the lint gate cannot rot even where CI is not running the
        dedicated job.
        """
        root = Path(__file__).resolve().parents[2]
        violations = lint_paths(
            [root / "src", root / "tests", root / "benchmarks"]
        )
        rendered = "\n".join(v.render() for v in violations)
        assert not violations, f"reprolint violations:\n{rendered}"
