"""The static lock-order graph is pinned as a golden artifact.

``tests/tools/lockorder.txt`` is the contract between the static
analyzer (R009 derives it), the runtime witness (the tier-1 soak
asserts its observed edges are a subset of it), and the human reader
(DESIGN.md documents the shard -> accounting and estimator -> engine
orders).  If an intentional locking change moves the graph, regenerate
the file with ``python -m tools.reprolint --dump-lockorder src`` and
review the diff like any other API change.
"""

from __future__ import annotations

from pathlib import Path

from tools.reprolint.engine import run_lint
from tools.reprolint.project import Project
from tools.reprolint.rules.r009_lockorder import derive_lock_graph

REPO = Path(__file__).resolve().parents[2]
GOLDEN = Path(__file__).with_name("lockorder.txt")


def test_static_graph_matches_golden():
    result = run_lint([REPO / "src"])
    graph = derive_lock_graph(Project(result.files))
    expected = tuple(GOLDEN.read_text().splitlines())
    assert graph.edge_lines() == expected


def test_documented_orders_are_pinned():
    # The two documented orders must never silently drop out of the
    # golden file — they are what R009 checks contradictions against.
    lines = GOLDEN.read_text().splitlines()
    assert "shard -> accounting" in lines
    assert "estimator -> engine" in lines


def test_tiering_orders_are_pinned():
    # The two-tier cache's locking discipline: an L1 eviction spills
    # under the shard lock (shard -> tiered -> l2), and the transitive
    # shard -> l2 edge is declared alongside it.  Both L2 backends
    # share the "l2" level, so one pinned order covers either.
    lines = GOLDEN.read_text().splitlines()
    assert "shard -> tiered" in lines
    assert "tiered -> l2" in lines
    assert "shard -> l2" in lines
