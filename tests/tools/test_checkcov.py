"""Tests for tools.checkcov — the stdlib coverage measurer."""

import threading

from tools.checkcov import LineCollector, executable_lines, measure_tree


class TestExecutableLines:
    def test_counts_statements_not_blanks_or_comments(self):
        source = (
            "x = 1\n"          # line 1: executable
            "\n"               # line 2: blank
            "# comment\n"      # line 3: comment
            "y = x + 1\n"      # line 4: executable
        )
        assert executable_lines(source) == {1, 4}

    def test_recurses_into_nested_code_objects(self):
        source = (
            "def outer():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
        )
        lines = executable_lines(source)
        assert {1, 2, 3, 4} <= lines


class TestLineCollector:
    def test_records_only_files_under_root(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("a = 1\nb = 2\n", encoding="utf-8")
        collector = LineCollector(tmp_path)
        collector.install()
        try:
            code = compile(
                target.read_text(encoding="utf-8"),
                str(target.resolve()),
                "exec",
            )
            exec(code, {})
            # This very frame is outside tmp_path, so it is pruned.
        finally:
            collector.uninstall()
        assert collector.hits == {str(target.resolve()): {1, 2}}

    def test_traces_worker_threads(self, tmp_path):
        target = tmp_path / "threaded.py"
        target.write_text("value = 40 + 2\n", encoding="utf-8")
        code = compile(
            target.read_text(encoding="utf-8"),
            str(target.resolve()),
            "exec",
        )
        collector = LineCollector(tmp_path)
        collector.install()
        try:
            worker = threading.Thread(target=exec, args=(code, {}))
            worker.start()
            worker.join()
        finally:
            collector.uninstall()
        assert collector.hits == {str(target.resolve()): {1}}


class TestMeasureTree:
    def test_unexecuted_files_count_as_zero(self, tmp_path):
        ran = tmp_path / "ran.py"
        ran.write_text("a = 1\nb = 2\n", encoding="utf-8")
        skipped = tmp_path / "skipped.py"
        skipped.write_text("c = 3\n", encoding="utf-8")
        hits = {str(ran.resolve()): {1}}
        report = measure_tree(tmp_path, hits)
        assert report[str(ran.resolve())] == (1, 2)
        assert report[str(skipped.resolve())] == (0, 1)

    def test_spurious_hits_do_not_inflate_coverage(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("a = 1\n", encoding="utf-8")
        hits = {str(mod.resolve()): {1, 99}}  # 99 is not executable
        assert measure_tree(tmp_path, hits)[str(mod.resolve())] == (1, 1)
