"""Each rule fires on a minimal bad example and stays silent on a good one."""

from __future__ import annotations

from tools.reprolint.engine import lint_source
from tools.reprolint.rules import RULES_BY_CODE


def codes(source: str, path: str) -> list[str]:
    return [v.code for v in lint_source(source, path)]


def only(source: str, path: str, code: str) -> list[str]:
    """Lint with a single rule so tests are independent of other rules."""
    rule = RULES_BY_CODE[code]
    return [v.code for v in lint_source(source, path, rules=[rule])]


class TestR001Layering:
    def test_chunks_importing_core_fires(self):
        src = "from repro.core.cache import ChunkCache\n"
        assert only(src, "src/repro/chunks/grid.py", "R001") == ["R001"]

    def test_storage_importing_pipeline_fires(self):
        src = "import repro.pipeline.executor\n"
        assert only(src, "src/repro/storage/disk.py", "R001") == ["R001"]

    def test_chunks_importing_schema_is_fine(self):
        src = "from repro.schema.dimension import Dimension\n"
        assert only(src, "src/repro/chunks/ranges.py", "R001") == []

    def test_core_importing_chunks_is_fine(self):
        src = "from repro.chunks.grid import ChunkSpace\n"
        assert only(src, "src/repro/core/manager.py", "R001") == []

    def test_backend_call_outside_pipeline_fires(self):
        src = "def f(backend, q):\n    return backend.answer(q)\n"
        assert only(src, "src/repro/core/manager.py", "R001") == ["R001"]

    def test_backend_call_on_self_backend_fires(self):
        src = (
            "class M:\n"
            "    def f(self, g, n):\n"
            "        return self.backend.compute_chunks(g, n)\n"
        )
        assert only(src, "src/repro/core/query_cache.py", "R001") == ["R001"]

    def test_backend_call_in_resolvers_is_fine(self):
        src = "def f(backend, q):\n    return backend.answer(q)\n"
        assert only(src, "src/repro/pipeline/resolvers.py", "R001") == []

    def test_backend_call_in_work_is_fine(self):
        src = (
            "def f(backend, g, n):\n"
            "    return backend.estimate_chunk_work_batch(g, n)\n"
        )
        assert only(src, "src/repro/pipeline/work.py", "R001") == []

    def test_backend_internal_call_is_fine(self):
        src = (
            "class BackendEngine:\n"
            "    def explain(self, g, n):\n"
            "        return self.estimate_chunk_work(g, n)\n"
        )
        assert only(src, "src/repro/backend/engine.py", "R001") == []

    def test_manager_answer_is_not_a_backend_call(self):
        src = "def f(manager, q):\n    return manager.answer(q)\n"
        assert only(src, "src/repro/experiments/harness.py", "R001") == []

    def test_waiver_comment_allows_oracle_use(self):
        src = (
            "def f(backend, q):\n"
            "    return backend.answer(q, 'scan')"
            "  # reprolint: ignore[R001] ground-truth oracle\n"
        )
        assert only(src, "src/repro/experiments/harness.py", "R001") == []

    def test_experiments_storage_submodule_import_fires(self):
        src = "from repro.storage.record import groupby_record_format\n"
        assert only(src, "src/repro/experiments/configs.py", "R001") == ["R001"]

    def test_experiments_storage_facade_import_is_fine(self):
        src = "from repro.storage import groupby_record_format\n"
        assert only(src, "src/repro/experiments/configs.py", "R001") == []

    # Facet 4 — the serving layer composes, never digs below.
    def test_serve_importing_backend_fires(self):
        src = "from repro.backend.engine import BackendEngine\n"
        assert only(src, "src/repro/serve/sharded.py", "R001") == ["R001"]

    def test_serve_importing_storage_fires(self):
        src = "import repro.storage.disk\n"
        assert only(src, "src/repro/serve/session.py", "R001") == ["R001"]

    def test_serve_importing_experiments_fires(self):
        src = "from repro.experiments.harness import get_system\n"
        assert only(src, "src/repro/serve/soak.py", "R001") == ["R001"]

    def test_serve_importing_pipeline_and_core_is_fine(self):
        src = (
            "from repro.core.manager import ChunkCacheManager\n"
            "from repro.pipeline.trace import record_blocked_wait\n"
            "from repro.workload.stream import QueryStream\n"
        )
        assert only(src, "src/repro/serve/session.py", "R001") == []

    def test_serve_importing_bare_facade_is_fine(self):
        src = "from repro import invariants\n"
        assert only(src, "src/repro/serve/sharded.py", "R001") == []

    def test_bare_facade_allowance_is_not_a_prefix(self):
        # "repro" being allowed must not make "repro.<anything>" pass.
        src = "import repro.backend\n"
        assert only(src, "src/repro/serve/sharded.py", "R001") == ["R001"]

    # Facet 5 — nothing below experiments may know about serve.
    def test_core_importing_serve_fires(self):
        src = "from repro.serve import ShardedChunkCache\n"
        assert only(src, "src/repro/core/manager.py", "R001") == ["R001"]

    def test_pipeline_importing_serve_fires(self):
        src = "import repro.serve.session\n"
        assert only(src, "src/repro/pipeline/executor.py", "R001") == ["R001"]

    def test_experiments_importing_serve_is_fine(self):
        src = "from repro.serve import ServeSession\n"
        assert only(src, "src/repro/experiments/multiuser.py", "R001") == []

    # The repro.serve.proc carve-out: the process-parallel backend
    # implementation may import the layers it implements (facet 4) and
    # drive engine entry points (facet 2) — no other serve module may.
    def test_serve_proc_importing_backend_is_fine(self):
        src = (
            "from repro.backend.engine import BackendEngine\n"
            "from repro.chunks.grid import ChunkSpace\n"
        )
        assert only(src, "src/repro/serve/proc.py", "R001") == []

    def test_serve_proc_importing_api_facade_is_fine(self):
        src = (
            "def build(spec):\n"
            "    from repro.api import build_backend\n"
            "    return build_backend(spec.schema, spec.space, spec.records)\n"
        )
        assert only(src, "src/repro/serve/proc.py", "R001") == []

    def test_serve_proc_backend_call_is_fine(self):
        src = (
            "def f(backend, g, n):\n"
            "    return backend.compute_chunks(g, n, ())\n"
        )
        assert only(src, "src/repro/serve/proc.py", "R001") == []

    def test_serve_proc_carveout_does_not_leak_to_siblings(self):
        src = "from repro.backend.engine import BackendEngine\n"
        assert only(src, "src/repro/serve/procx.py", "R001") == ["R001"]
        assert only(src, "src/repro/serve/soak.py", "R001") == ["R001"]


class TestR002FloatEquality:
    def test_float_literal_equality_fires(self):
        src = "def f(x):\n    return x == 0.0\n"
        assert only(src, "src/repro/analysis/cost.py", "R002") == ["R002"]

    def test_cost_identifier_equality_fires(self):
        src = "def f(a, b):\n    return a.full_cost != b.full_cost\n"
        assert only(src, "src/repro/core/metrics.py", "R002") == ["R002"]

    def test_sum_equality_fires(self):
        src = "def f(rs):\n    return sum(r.time for r in rs) == 0\n"
        assert only(src, "src/repro/core/metrics.py", "R002") == ["R002"]

    def test_benefit_in_chained_compare_fires(self):
        src = "def f(benefit):\n    return 0 == benefit == 1\n"
        assert only(src, "src/repro/core/cache.py", "R002") == ["R002", "R002"]

    def test_ordering_comparison_is_fine(self):
        src = "def f(benefit):\n    return benefit <= 0\n"
        assert only(src, "src/repro/core/replacement.py", "R002") == []

    def test_isclose_is_fine(self):
        src = (
            "import math\n"
            "def f(a, b):\n"
            "    return math.isclose(a.full_cost, b.full_cost)\n"
        )
        assert only(src, "src/repro/core/metrics.py", "R002") == []

    def test_integer_count_equality_is_fine(self):
        src = "def f(parts):\n    return len(parts) == 0\n"
        assert only(src, "src/repro/core/manager.py", "R002") == []

    def test_string_equality_is_fine(self):
        src = "def f(part):\n    return part.resolver == 'cache'\n"
        assert only(src, "src/repro/pipeline/stages.py", "R002") == []


class TestR003FrozenDataclasses:
    def test_unfrozen_pipeline_dataclass_fires(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class StageOutput:\n"
            "    rows: int\n"
        )
        assert only(src, "src/repro/pipeline/stages.py", "R003") == ["R003"]

    def test_frozen_false_fires(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=False)\n"
            "class StageOutput:\n"
            "    rows: int\n"
        )
        assert only(src, "src/repro/pipeline/stages.py", "R003") == ["R003"]

    def test_unannotated_field_fires(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class StageOutput:\n"
            "    rows: int\n"
            "    name = 'stage'\n"
        )
        assert only(src, "src/repro/pipeline/trace.py", "R003") == ["R003"]

    def test_frozen_annotated_dataclass_is_fine(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class StageOutput:\n"
            "    rows: int\n"
            "    name: str = 'stage'\n"
        )
        assert only(src, "src/repro/pipeline/stages.py", "R003") == []

    def test_plain_accumulator_class_is_fine(self):
        src = (
            "class Resolution:\n"
            "    def __init__(self):\n"
            "        self.parts = {}\n"
        )
        assert only(src, "src/repro/pipeline/stages.py", "R003") == []

    def test_rule_scoped_to_pipeline_package(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class ChunkCacheStats:\n"
            "    hits: int = 0\n"
        )
        assert only(src, "src/repro/core/cache.py", "R003") == []


class TestR004Hygiene:
    def test_bare_except_fires(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert only(src, "src/repro/backend/sql.py", "R004") == ["R004"]

    def test_swallowed_broad_except_fires(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert only(src, "src/repro/core/cache.py", "R004") == ["R004"]

    def test_broad_except_with_handling_is_fine(self):
        src = "try:\n    f()\nexcept Exception:\n    x = fallback()\n"
        assert only(src, "src/repro/core/cache.py", "R004") == []

    def test_narrow_except_pass_is_fine(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert only(src, "src/repro/core/cache.py", "R004") == []

    def test_mutable_list_default_fires(self):
        src = "def f(xs=[]):\n    return xs\n"
        assert only(src, "src/repro/workload/stream.py", "R004") == ["R004"]

    def test_mutable_constructor_default_fires(self):
        src = "def f(xs=dict()):\n    return xs\n"
        assert only(src, "src/repro/workload/stream.py", "R004") == ["R004"]

    def test_keyword_only_mutable_default_fires(self):
        src = "def f(*, xs={}):\n    return xs\n"
        assert only(src, "src/repro/workload/stream.py", "R004") == ["R004"]

    def test_none_default_is_fine(self):
        src = "def f(xs=None):\n    return xs or []\n"
        assert only(src, "src/repro/workload/stream.py", "R004") == []

    def test_applies_to_tests_too(self):
        src = "def f(xs=[]):\n    return xs\n"
        assert only(src, "tests/core/test_cache.py", "R004") == ["R004"]


class TestR005MetricsAccounting:
    def test_queryrecord_outside_metrics_fires(self):
        src = (
            "from repro.core.metrics import QueryRecord\n"
            "def f():\n"
            "    return QueryRecord(time=1.0, full_cost=1.0, saved_cost=0.0,\n"
            "                       chunks_total=1, chunks_hit=0)\n"
        )
        assert only(src, "src/repro/core/manager.py", "R005") == ["R005"]

    def test_account_answer_is_the_sanctioned_path(self):
        src = (
            "from repro.core.metrics import account_answer\n"
            "def f(cm, report):\n"
            "    return account_answer(cm, report, full_cost=1.0,\n"
            "                          saved_cost=0.0, chunks_total=1,\n"
            "                          chunks_hit=0)\n"
        )
        assert only(src, "src/repro/core/manager.py", "R005") == []

    def test_write_through_metrics_fires(self):
        src = (
            "def f(self):\n"
            "    self.metrics.total_time = 0.0\n"
        )
        assert only(src, "src/repro/core/manager.py", "R005") == ["R005"]

    def test_private_store_write_fires(self):
        src = "def f(m, r):\n    m._records += [r]\n"
        assert only(src, "src/repro/experiments/harness.py", "R005") == ["R005"]

    def test_binding_fresh_metrics_is_fine(self):
        src = (
            "from repro.core.metrics import StreamMetrics\n"
            "class M:\n"
            "    def __init__(self):\n"
            "        self.metrics = StreamMetrics()\n"
        )
        assert only(src, "src/repro/core/manager.py", "R005") == []

    def test_record_call_is_fine(self):
        src = "def f(self, record, trace):\n    self.metrics.record(record, trace)\n"
        assert only(src, "src/repro/core/manager.py", "R005") == []

    def test_metrics_module_itself_is_exempt(self):
        src = "def f(self, r):\n    self._records = [r]\n"
        assert only(src, "src/repro/core/metrics.py", "R005") == []

    def test_tests_are_exempt(self):
        src = (
            "from repro.core.metrics import QueryRecord\n"
            "def test_record():\n"
            "    QueryRecord(time=1.0, full_cost=1.0, saved_cost=0.0,\n"
            "                chunks_total=1, chunks_hit=1)\n"
        )
        assert only(src, "tests/core/test_metrics.py", "R005") == []


class TestR006FaultBoundary:
    def test_serve_importing_faults_fires(self):
        src = "from repro.faults import FaultInjector\n"
        assert only(src, "src/repro/serve/soak.py", "R006") == ["R006"]

    def test_plain_import_of_faults_fires(self):
        src = "import repro.faults.injector\n"
        assert only(src, "src/repro/core/manager.py", "R006") == ["R006"]

    def test_core_constructing_plan_fires(self):
        src = (
            "def f(specs):\n"
            "    return FaultPlan(seed=1, specs=specs)\n"
        )
        assert only(src, "src/repro/core/cache.py", "R006") == ["R006"]

    def test_attribute_construction_fires(self):
        src = (
            "import repro\n"
            "def f(plan):\n"
            "    return repro.FaultInjector(plan)\n"
        )
        assert only(src, "src/repro/storage/disk.py", "R006") == ["R006"]

    def test_experiments_layer_is_a_composition_root(self):
        src = (
            "from repro.faults import FaultInjector, FaultPlan\n"
            "def f(specs):\n"
            "    return FaultInjector(FaultPlan(seed=1, specs=specs))\n"
        )
        assert only(src, "src/repro/experiments/soakjob.py", "R006") == []

    def test_faults_package_may_know_itself(self):
        src = "from repro.faults.plan import FaultPlan\n"
        assert only(src, "src/repro/faults/injector.py", "R006") == []

    def test_tests_are_exempt(self):
        src = (
            "from repro.faults import FaultPlan\n"
            "def test_plan():\n"
            "    FaultPlan(seed=1, specs=())\n"
        )
        assert only(src, "tests/faults/test_plan.py", "R006") == []


class TestR007Facade:
    def test_experiment_constructing_chunk_manager_fires(self):
        src = (
            "from repro.core.manager import ChunkCacheManager\n"
            "def f(schema, space, backend, cache):\n"
            "    return ChunkCacheManager(schema, space, backend, cache)\n"
        )
        assert only(src, "src/repro/experiments/fig9.py", "R007") == ["R007"]

    def test_serve_constructing_sharded_cache_fires(self):
        src = (
            "from repro.serve.sharded import ShardedChunkCache\n"
            "def f(budget):\n"
            "    return ShardedChunkCache(budget, num_shards=4)\n"
        )
        assert only(src, "src/repro/serve/soak.py", "R007") == ["R007"]

    def test_engine_build_fires(self):
        src = (
            "from repro.backend.engine import BackendEngine\n"
            "def f(schema, space, records):\n"
            "    return BackendEngine.build(schema, space, records)\n"
        )
        assert only(src, "src/repro/experiments/harness.py", "R007") == [
            "R007"
        ]

    def test_query_manager_via_attribute_fires(self):
        src = (
            "import repro.core.query_cache as qc\n"
            "def f(schema, backend):\n"
            "    return qc.QueryCacheManager(schema, backend, 1 << 20)\n"
        )
        assert only(src, "src/repro/workload/stream.py", "R007") == ["R007"]

    def test_facade_itself_is_exempt(self):
        src = (
            "from repro.core.manager import ChunkCacheManager\n"
            "def build(schema, space, backend, cache):\n"
            "    return ChunkCacheManager(schema, space, backend, cache)\n"
        )
        assert only(src, "src/repro/api.py", "R007") == []

    def test_defining_modules_are_exempt(self):
        src = (
            "def clone(self):\n"
            "    return ShardedChunkCache(self.capacity_bytes)\n"
        )
        assert only(src, "src/repro/serve/sharded.py", "R007") == []

    def test_non_build_engine_attribute_is_fine(self):
        src = (
            "def f(backend, query):\n"
            "    return backend.answer(query, 'scan')\n"
        )
        assert only(src, "src/repro/experiments/fig9.py", "R007") == []

    def test_other_build_classmethods_are_fine(self):
        src = (
            "from repro.storage.heap import HeapFile\n"
            "def f(pages):\n"
            "    return HeapFile.build(pages)\n"
        )
        assert only(src, "src/repro/experiments/fig9.py", "R007") == []

    def test_tests_are_exempt(self):
        src = (
            "from repro.core.manager import ChunkCacheManager\n"
            "def test_manager(schema, space, backend, cache):\n"
            "    ChunkCacheManager(schema, space, backend, cache)\n"
        )
        assert only(src, "tests/core/test_manager.py", "R007") == []


class TestR008ProcessBoundary:
    def test_core_importing_multiprocessing_fires(self):
        src = "import multiprocessing\n"
        assert only(src, "src/repro/core/manager.py", "R008") == ["R008"]

    def test_mp_submodule_import_fires(self):
        src = "from multiprocessing.queues import Queue\n"
        assert only(src, "src/repro/serve/session.py", "R008") == ["R008"]

    def test_process_pool_executor_import_fires(self):
        src = "from concurrent.futures import ProcessPoolExecutor\n"
        assert only(src, "src/repro/pipeline/executor.py", "R008") == [
            "R008"
        ]

    def test_process_pool_executor_call_fires(self):
        src = (
            "import concurrent.futures as cf\n"
            "def f():\n"
            "    return cf.ProcessPoolExecutor(4)\n"
        )
        assert only(src, "src/repro/backend/engine.py", "R008") == ["R008"]

    def test_thread_pool_executor_is_fine(self):
        src = "from concurrent.futures import ThreadPoolExecutor\n"
        assert only(src, "src/repro/serve/session.py", "R008") == []

    def test_serve_proc_is_the_sanctioned_home(self):
        src = (
            "import multiprocessing\n"
            "def pool():\n"
            "    return multiprocessing.get_context('spawn')\n"
        )
        assert only(src, "src/repro/serve/proc.py", "R008") == []

    def test_experiments_layer_is_a_composition_root(self):
        src = "import multiprocessing\n"
        assert only(src, "src/repro/experiments/soakjob.py", "R008") == []

    def test_cli_is_a_composition_root(self):
        src = "from multiprocessing import get_context\n"
        assert only(src, "src/repro/__main__.py", "R008") == []

    def test_tests_are_exempt(self):
        src = "import multiprocessing\n"
        assert only(src, "tests/serve/test_proc.py", "R008") == []


class TestR011ChunkLog:
    def test_experiment_constructing_chunklog_fires(self):
        src = (
            "from repro.storage.chunklog import ChunkLog\n"
            "def f(path):\n"
            "    return ChunkLog(path, page_size=4096)\n"
        )
        assert only(src, "src/repro/experiments/fig9.py", "R011") == [
            "R011"
        ]

    def test_serve_constructing_tiered_cache_fires(self):
        src = (
            "from repro.core.tiered import TieredChunkCache\n"
            "def f(l1, log):\n"
            "    return TieredChunkCache(l1, log)\n"
        )
        assert only(src, "src/repro/serve/soak.py", "R011") == ["R011"]

    def test_chunklog_via_attribute_fires(self):
        src = (
            "import repro.storage.chunklog as cl\n"
            "def f(path):\n"
            "    return cl.ChunkLog(path, page_size=4096)\n"
        )
        assert only(src, "src/repro/workload/stream.py", "R011") == [
            "R011"
        ]

    def test_facade_itself_is_exempt(self):
        src = (
            "from repro.storage.chunklog import ChunkLog\n"
            "def build(path):\n"
            "    return ChunkLog(path, page_size=4096)\n"
        )
        assert only(src, "src/repro/api.py", "R011") == []

    def test_defining_modules_are_exempt(self):
        src = (
            "def reopen_log(self, path):\n"
            "    return ChunkLog(path, page_size=self.page_size)\n"
        )
        assert only(src, "src/repro/storage/chunklog.py", "R011") == []

    def test_tests_are_exempt(self):
        src = (
            "from repro.storage.chunklog import ChunkLog\n"
            "def test_log(tmp_path):\n"
            "    ChunkLog(str(tmp_path / 'log.bin'), page_size=256)\n"
        )
        assert only(src, "tests/storage/test_chunklog.py", "R011") == []

    def test_experiment_constructing_sqlite_backend_fires(self):
        src = (
            "from repro.storage.sqlitelog import SqliteBackend\n"
            "def f(path):\n"
            "    return SqliteBackend(path, page_size=4096)\n"
        )
        assert only(src, "src/repro/experiments/fig9.py", "R011") == [
            "R011"
        ]

    def test_sqlitelog_module_is_exempt(self):
        src = (
            "def reopen_backend(self, path):\n"
            "    return SqliteBackend(path, page_size=self.page_size)\n"
        )
        assert only(src, "src/repro/storage/sqlitelog.py", "R011") == []
