"""Phase-2 symbol table and call graph over a synthetic mini-project."""

from __future__ import annotations

import ast

from tools.reprolint.callgraph import CallGraph, FuncRef, SymbolTable
from tools.reprolint.facts import extract_facts

A_PY = (
    "class Cache:\n"
    "    def lookup(self):\n"
    "        return self._probe()\n"
    "    def _probe(self):\n"
    "        return helper()\n"
    "def helper():\n"
    "    return 1\n"
)

B_PY = (
    "class Backend:\n"
    "    def lookup(self):\n"
    "        return 2\n"
    "def driver(cache):\n"
    "    return cache.lookup()\n"
    "def local_call():\n"
    "    return helper()\n"
)


def _project_files():
    return {
        "src/repro/a.py": ("repro.a", A_PY),
        "src/repro/b.py": ("repro.b", B_PY),
    }


def _symbols():
    files = []
    for path, (module, source) in _project_files().items():
        files.append(
            extract_facts(
                path=path, module=module, tree=ast.parse(source), suppressions=()
            )
        )
    return SymbolTable(tuple(files))


def _func(symbols, path, qualname):
    ref = FuncRef(path=path, qualname=qualname)
    return ref, symbols.functions[ref]


class TestResolveCall:
    def test_bare_name_prefers_same_file(self):
        symbols = _symbols()
        _, caller = _func(symbols, "src/repro/b.py", "local_call")
        refs = symbols.resolve_call("helper", caller, "src/repro/b.py")
        assert refs == (FuncRef("src/repro/a.py", "helper"),)

    def test_self_call_resolves_to_own_class(self):
        symbols = _symbols()
        _, caller = _func(symbols, "src/repro/a.py", "Cache.lookup")
        refs = symbols.resolve_call("self._probe", caller, "src/repro/a.py")
        assert refs == (FuncRef("src/repro/a.py", "Cache._probe"),)

    def test_ambiguous_method_matches_every_class(self):
        symbols = _symbols()
        _, caller = _func(symbols, "src/repro/b.py", "driver")
        refs = symbols.resolve_call("cache.lookup", caller, "src/repro/b.py")
        assert set(refs) == {
            FuncRef("src/repro/a.py", "Cache.lookup"),
            FuncRef("src/repro/b.py", "Backend.lookup"),
        }

    def test_stdlib_colliding_names_are_denied(self):
        symbols = _symbols()
        _, caller = _func(symbols, "src/repro/b.py", "driver")
        # "get"/"put"/"items" collide with dict/queue methods; a
        # name-based match would fabricate edges.
        assert symbols.resolve_call("store.get", caller, "src/repro/b.py") == ()


class TestCallGraph:
    def test_edges_follow_resolution(self):
        symbols = _symbols()
        graph = CallGraph(symbols)
        ref, _ = _func(symbols, "src/repro/a.py", "Cache.lookup")
        assert FuncRef("src/repro/a.py", "Cache._probe") in graph.callees(ref)

    def test_transitive_closure(self):
        symbols = _symbols()
        graph = CallGraph(symbols)
        ref, _ = _func(symbols, "src/repro/a.py", "Cache.lookup")
        closure = graph.transitive_closure([ref])
        assert FuncRef("src/repro/a.py", "helper") in closure
