"""Phase-1 fact extraction: locks, writes, nondet sources, taint tokens."""

from __future__ import annotations

import ast

from tools.reprolint.facts import (
    extract_facts,
    facts_from_dict,
    facts_to_dict,
    split_arg_token,
)


def _facts(source: str, path: str = "src/repro/mod.py", module: str | None = "repro.mod"):
    return extract_facts(
        path=path, module=module, tree=ast.parse(source), suppressions=()
    )


def _func(facts, qualname):
    for func in facts.functions:
        if func.qualname == qualname:
            return func
    raise AssertionError(f"{qualname} not extracted: {[f.qualname for f in facts.functions]}")


class TestLockRegions:
    SOURCE = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "    def locked_write(self):\n"
        "        with self._lock:\n"
        "            self._x = 1\n"
        "    def unlocked_write(self):\n"
        "        self._x = 2\n"
        "    def explicit(self):\n"
        "        self._lock.acquire()\n"
        "        self._y = 3\n"
        "        self._lock.release()\n"
        "        self._z = 4\n"
    )

    def test_with_region_marks_writes_held(self):
        func = _func(_facts(self.SOURCE), "C.locked_write")
        (write,) = func.attr_writes
        assert write.attr == "_x"
        assert write.held == ("self._lock",)

    def test_write_outside_region_is_unheld(self):
        func = _func(_facts(self.SOURCE), "C.unlocked_write")
        (write,) = func.attr_writes
        assert write.held == ()

    def test_explicit_acquire_release_brackets_statements(self):
        func = _func(_facts(self.SOURCE), "C.explicit")
        held = {w.attr: w.held for w in func.attr_writes}
        assert held["_y"] == ("self._lock",)
        assert held["_z"] == ()

    def test_class_lock_attrs_detected(self):
        facts = _facts(self.SOURCE)
        (cls,) = facts.classes
        assert cls.lock_attrs == (("_lock", "Lock"),)


class TestNondetSources:
    def test_clock_and_rng_calls(self):
        facts = _facts(
            "import random, time\n"
            "def f():\n"
            "    return time.perf_counter() + random.random()\n"
        )
        kinds = {use.kind for use in _func(facts, "f").nondet}
        assert kinds == {"clock", "rng"}

    def test_seeded_random_is_not_a_source(self):
        facts = _facts(
            "import random\n"
            "def f(seed):\n"
            "    return random.Random(seed).random()\n"
        )
        assert _func(facts, "f").nondet == ()

    def test_environ_id_and_set_iteration(self):
        facts = _facts(
            "import os\n"
            "def f(x):\n"
            "    s = {1, 2}\n"
            "    for item in s:\n"
            "        pass\n"
            "    return os.environ.get('K'), id(x)\n"
        )
        kinds = {use.kind for use in _func(facts, "f").nondet}
        assert kinds == {"environ", "id", "set-iter"}


class TestTaintTokens:
    def test_field_projection_does_not_smear(self):
        facts = _facts(
            "def f(report):\n"
            "    return report.queries\n"
        )
        assert _func(facts, "f").return_tokens == ("attr:queries",)

    def test_local_substitution(self):
        facts = _facts(
            "import time\n"
            "def f():\n"
            "    t = time.perf_counter()\n"
            "    u = t\n"
            "    return u\n"
        )
        assert "nondet" in _func(facts, "f").return_tokens

    def test_call_arguments_are_tagged(self):
        facts = _facts(
            "def f(report):\n"
            "    return digestify(report.wall_seconds)\n"
        )
        tokens = _func(facts, "f").return_tokens
        assert "call:digestify" in tokens
        assert "arg:digestify:attr:wall_seconds" in tokens

    def test_split_arg_token_round_trip(self):
        callees, base = split_arg_token("arg:f:arg:g:attr:x")
        assert callees == ("f", "g")
        assert base == "attr:x"
        assert split_arg_token("attr:x") == ((), "attr:x")

    def test_attr_assignment_records_field_taint(self):
        facts = _facts(
            "import time\n"
            "class C:\n"
            "    def f(self):\n"
            "        self.wall_seconds = time.perf_counter()\n"
        )
        (taint,) = _func(facts, "C.f").attr_taints
        assert taint[0] == "wall_seconds"
        assert "nondet" in taint[1]

    def test_constructor_keyword_taint(self):
        facts = _facts(
            "import time\n"
            "def f():\n"
            "    return Report(wall=time.perf_counter(), n=3)\n"
        )
        keywords = {kw.keyword: kw.tokens for kw in _func(facts, "f").kw_taints}
        assert "nondet" in keywords["wall"]
        assert "nondet" not in keywords["n"]

    def test_nested_dict_values_stay_per_key(self):
        facts = _facts(
            "import time\n"
            "def f():\n"
            "    return {'outer': [{'wall_seconds': time.perf_counter()}]}\n",
            path="benchmarks/test_bench_x.py",
            module=None,
        )
        taints = {d.key: d.tokens for d in _func(facts, "f").dict_taints}
        assert "nondet" in taints["wall_seconds"]
        assert "nondet" not in taints["outer"]


class TestRoundTrip:
    def test_facts_survive_json_round_trip(self):
        facts = _facts(TestLockRegions.SOURCE)
        assert facts_from_dict(facts_to_dict(facts)) == facts
