"""R009 (lock discipline) and R010 (determinism taint) fire/no-fire."""

from __future__ import annotations

import ast

from tools.reprolint.engine import lint_source, lint_sources
from tools.reprolint.facts import extract_facts
from tools.reprolint.project import Project
from tools.reprolint.rules import r009_lockorder, r010_taint


def _codes(violations):
    return [v.code for v in violations]


def _r009(source, path="src/repro/serve/mod.py"):
    return lint_source(source, path=path, rules=(r009_lockorder,))


def _r010(source, path="src/repro/mod.py"):
    return lint_source(source, path=path, rules=(r010_taint,))


class TestLockOrderGraph:
    TWO_LOCKS = (
        "import threading\n"
        "class CacheShard:\n"
        "    def __init__(self):\n"
        "        self.lock = threading.Lock()\n"
        "class ShardedChunkCache:\n"
        "    def __init__(self):\n"
        "        self._accounting_lock = threading.Lock()\n"
        "        self._shard = CacheShard()\n"
    )

    def test_documented_order_passes(self):
        source = self.TWO_LOCKS + (
            "    def ok(self):\n"
            "        with self._shard.lock:\n"
            "            with self._accounting_lock:\n"
            "                pass\n"
        )
        assert _r009(source) == []

    def test_contradicting_documented_order_fires(self):
        source = self.TWO_LOCKS + (
            "    def bad(self):\n"
            "        with self._accounting_lock:\n"
            "            with self._shard.lock:\n"
            "                pass\n"
        )
        codes = _codes(_r009(source))
        assert "R009" in codes

    def test_cycle_between_auto_levels_fires(self):
        source = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._la = threading.Lock()\n"
            "    def fwd(self, b):\n"
            "        with self._la:\n"
            "            with b._lb:\n"
            "                pass\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self._lb = threading.Lock()\n"
            "    def rev(self, a):\n"
            "        with self._lb:\n"
            "            with a._la:\n"
            "                pass\n"
        )
        messages = [v.message for v in _r009(source)]
        assert any("cycle" in m for m in messages)

    def test_transitive_edge_through_call(self):
        source = (
            "import threading\n"
            "class A:\n"
            "    def __init__(self):\n"
            "        self._la = threading.Lock()\n"
            "    def outer(self, b):\n"
            "        with self._la:\n"
            "            b.inner_hold()\n"
            "class B:\n"
            "    def __init__(self):\n"
            "        self._lb = threading.Lock()\n"
            "    def inner_hold(self):\n"
            "        with self._lb:\n"
            "            pass\n"
            "    def rev(self, a):\n"
            "        with self._lb:\n"
            "            with a._la:\n"
            "                pass\n"
        )
        # outer->inner via the call plus the explicit reverse nesting
        # closes a cycle even though no single function nests both ways.
        messages = [v.message for v in _r009(source)]
        assert any("cycle" in m for m in messages)


class TestGuardedState:
    LOCKED_CLASS = (
        "import threading\n"
        "class Session:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._count = 0\n"
    )

    def test_unlocked_write_fires(self):
        source = self.LOCKED_CLASS + (
            "    def bump(self):\n"
            "        self._count += 1\n"
        )
        assert _codes(_r009(source)) == ["R009"]

    def test_locked_write_passes(self):
        source = self.LOCKED_CLASS + (
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
        )
        assert _r009(source) == []

    def test_init_writes_are_exempt(self):
        assert _r009(self.LOCKED_CLASS) == []

    def test_outside_serve_layer_not_checked(self):
        source = self.LOCKED_CLASS + (
            "    def bump(self):\n"
            "        self._count += 1\n"
        )
        assert _r009(source, path="src/repro/core/mod.py") == []

    def test_registered_coordinator_state_passes(self):
        source = (
            "import threading\n"
            "class WorkerPool:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def start(self):\n"
            "        self._started = True\n"
        )
        assert _r009(source) == []

    def test_inline_waiver_with_reason_passes(self):
        source = self.LOCKED_CLASS + (
            "    def bump(self):\n"
            "        self._count += 1  # reprolint: ignore[R009] single-threaded test\n"
        )
        assert _r009(source) == []


class TestTaintSinks:
    def test_clock_in_digest_fires(self):
        source = (
            "import time\n"
            "def compute_digest():\n"
            "    return str(time.perf_counter())\n"
        )
        assert _codes(_r010(source)) == ["R010"]

    def test_deterministic_digest_passes(self):
        source = (
            "from hashlib import sha256\n"
            "def compute_digest(records):\n"
            "    return sha256(repr(records).encode()).hexdigest()\n"
        )
        assert _r010(source) == []

    def test_taint_propagates_through_call_chain(self):
        source = (
            "import time\n"
            "def wall():\n"
            "    return time.perf_counter()\n"
            "def middle():\n"
            "    return wall()\n"
            "def compute_digest():\n"
            "    return middle()\n"
        )
        assert "R010" in _codes(_r010(source))

    def test_tainted_field_read_in_digest_fires(self):
        source = (
            "import time\n"
            "class Trace:\n"
            "    def tick(self):\n"
            "        self.wall_seconds = time.perf_counter()\n"
            "def compute_digest(trace):\n"
            "    return trace.wall_seconds\n"
        )
        assert "R010" in _codes(_r010(source))

    def test_sibling_field_stays_clean(self):
        source = (
            "import time\n"
            "class Trace:\n"
            "    def tick(self):\n"
            "        self.wall_seconds = time.perf_counter()\n"
            "        self.pages = 3\n"
            "def compute_digest(trace):\n"
            "    return trace.pages\n"
        )
        assert _r010(source) == []

    def test_digest_call_is_a_barrier_for_arguments(self):
        # Passing a partly-tainted object INTO a digest function must
        # not taint the hash: the fields the digest reads are audited
        # inside its own (sink) body.
        sources = {
            "src/repro/serve/x.py": (
                "import time\n"
                "class Session:\n"
                "    def run(self):\n"
                "        self.wall_seconds = time.perf_counter()\n"
                "        return self\n"
                "def _x_digest(report):\n"
                "    return repr(report.pages)\n"
                "def drive(session):\n"
                "    report = session.run()\n"
                "    return Outcome(digest=_x_digest(report))\n"
                "class Outcome:\n"
                "    def __init__(self, digest):\n"
                "        self.digest = digest\n"
            ),
        }
        assert lint_sources(sources, rules=(r010_taint,)) == []

    def test_seeded_rng_passes(self):
        source = (
            "import random\n"
            "def compute_digest(seed):\n"
            "    return random.Random(seed).random()\n"
        )
        assert _r010(source) == []


class TestBenchFields:
    def test_non_whitelisted_tainted_field_fires(self):
        source = (
            "import time\n"
            "def run_row():\n"
            "    return {'throughput': time.perf_counter()}\n"
        )
        violations = _r010(source, path="benchmarks/test_bench_x.py")
        assert _codes(violations) == ["R010"]
        assert "throughput" in violations[0].message

    def test_wall_whitelist_passes(self):
        source = (
            "import time\n"
            "def run_row():\n"
            "    return {'wall_seconds': time.perf_counter()}\n"
        )
        assert _r010(source, path="benchmarks/test_bench_x.py") == []

    def test_untainted_field_passes(self):
        source = (
            "def run_row(report):\n"
            "    return {'pages_read': report.pages_read}\n"
        )
        assert _r010(source, path="benchmarks/test_bench_x.py") == []

    def test_outside_benchmarks_not_checked(self):
        source = (
            "import time\n"
            "def run_row():\n"
            "    return {'throughput': time.perf_counter()}\n"
        )
        assert _r010(source, path="src/repro/mod.py") == []


class TestDeriveLockGraph:
    def test_graph_matches_known_edges(self):
        source = TestLockOrderGraph.TWO_LOCKS + (
            "    def ok(self):\n"
            "        with self._shard.lock:\n"
            "            with self._accounting_lock:\n"
            "                pass\n"
        )
        facts = extract_facts(
            path="src/repro/serve/mod.py",
            module="repro.serve.mod",
            tree=ast.parse(source),
            suppressions=(),
        )
        graph = r009_lockorder.derive_lock_graph(Project((facts,)))
        assert "shard -> accounting" in graph.edge_lines()
