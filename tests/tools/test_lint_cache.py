"""Content-hash fact cache: hits, invalidation on edit, code supersets."""

from __future__ import annotations

import json

from tools.reprolint.engine import run_lint
from tools.reprolint.rules import r002_float_eq, r004_hygiene

DIRTY = "def f(x=[]):\n    return x\n"
CLEAN = "def f(x=None):\n    return x\n"


def _write(tmp_path, name, source):
    target = tmp_path / name
    target.write_text(source)
    return target


class TestCache:
    def test_second_run_hits_cache_with_same_violations(self, tmp_path):
        _write(tmp_path, "mod.py", DIRTY)
        cache = tmp_path / "cache.json"
        cold = run_lint([tmp_path], cache_path=cache)
        warm = run_lint([tmp_path], cache_path=cache)
        assert cold.cache_misses == 1 and cold.cache_hits == 0
        assert warm.cache_hits == 1 and warm.cache_misses == 0
        assert [v.code for v in cold.violations] == ["R004"]
        assert warm.violations == cold.violations

    def test_edit_invalidates_entry(self, tmp_path):
        target = _write(tmp_path, "mod.py", DIRTY)
        cache = tmp_path / "cache.json"
        assert run_lint([tmp_path], cache_path=cache).violations
        target.write_text(CLEAN)
        fixed = run_lint([tmp_path], cache_path=cache)
        assert fixed.cache_misses == 1
        assert fixed.violations == []

    def test_cached_facts_feed_project_rules(self, tmp_path):
        src = tmp_path / "src" / "repro" / "serve"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(
            "import threading\n"
            "class Session:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def bump(self):\n"
            "        self._count = 1\n"
        )
        cache = tmp_path / "cache.json"
        cold = run_lint([tmp_path / "src"], cache_path=cache)
        warm = run_lint([tmp_path / "src"], cache_path=cache)
        assert warm.cache_hits == 1
        # R009 is a whole-program rule: it must fire identically from
        # cached facts, not just on the parse path.
        assert [v.code for v in cold.violations] == ["R009"]
        assert warm.violations == cold.violations

    def test_cache_entry_requires_code_superset(self, tmp_path):
        # R002 only applies to src/repro modules, so give the file a
        # real module path.
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(DIRTY + "assert 0.1 == x\n")
        cache = tmp_path / "cache.json"
        run_lint([tmp_path / "src"], rules=(r004_hygiene,), cache_path=cache)
        widened = run_lint(
            [tmp_path / "src"],
            rules=(r004_hygiene, r002_float_eq),
            cache_path=cache,
        )
        # The cached entry only covered R004, so asking for R002 too
        # must re-extract instead of silently under-reporting.
        assert widened.cache_misses == 1
        assert sorted(v.code for v in widened.violations) == ["R002", "R004"]

    def test_narrower_selection_filters_cached_violations(self, tmp_path):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "mod.py").write_text(DIRTY + "assert 0.1 == x\n")
        cache = tmp_path / "cache.json"
        run_lint(
            [tmp_path / "src"],
            rules=(r004_hygiene, r002_float_eq),
            cache_path=cache,
        )
        narrow = run_lint(
            [tmp_path / "src"], rules=(r002_float_eq,), cache_path=cache
        )
        assert narrow.cache_hits == 1
        assert [v.code for v in narrow.violations] == ["R002"]

    def test_stale_entries_pruned(self, tmp_path):
        doomed = _write(tmp_path, "doomed.py", DIRTY)
        _write(tmp_path, "kept.py", CLEAN)
        cache = tmp_path / "cache.json"
        run_lint([tmp_path], cache_path=cache)
        doomed.unlink()
        run_lint([tmp_path], cache_path=cache)
        payload = json.loads(cache.read_text())
        assert [p for p in payload["files"]] == [str(tmp_path / "kept.py")]

    def test_corrupt_cache_is_ignored(self, tmp_path):
        _write(tmp_path, "mod.py", DIRTY)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        result = run_lint([tmp_path], cache_path=cache)
        assert result.cache_misses == 1
        assert [v.code for v in result.violations] == ["R004"]
