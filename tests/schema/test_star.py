"""Tests for repro.schema.star."""

import pytest

from repro.exceptions import SchemaError
from repro.schema.builder import build_dimension, build_star_schema
from repro.schema.star import Measure, StarSchema


class TestMeasure:
    def test_defaults(self):
        m = Measure("sales")
        assert m.dtype == "f8"
        assert m.default_aggregate == "sum"

    def test_bad_aggregate_rejected(self):
        with pytest.raises(SchemaError):
            Measure("sales", default_aggregate="median")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Measure("")


@pytest.fixture()
def schema():
    return build_star_schema(
        [[2, 4], [3, 9]], measure_names=("sales", "qty")
    )


class TestStarSchema:
    def test_lookup(self, schema):
        assert schema.num_dimensions == 2
        assert schema.dimension("D0").name == "D0"
        assert schema.dimension_position("D1") == 1
        assert schema.measure("qty").name == "qty"
        assert schema.measure_position("sales") == 0
        assert schema.has_measure("qty")
        assert not schema.has_measure("profit")

    def test_unknown_names_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.dimension("D9")
        with pytest.raises(SchemaError):
            schema.measure("profit")
        with pytest.raises(SchemaError):
            schema.dimension_position("nope")

    def test_needs_dimensions_and_measures(self):
        dim = build_dimension("d", [2])
        with pytest.raises(SchemaError):
            StarSchema([], [Measure("m")])
        with pytest.raises(SchemaError):
            StarSchema([dim], [])

    def test_duplicate_names_rejected(self):
        d1 = build_dimension("d", [2])
        d2 = build_dimension("d", [3])
        with pytest.raises(SchemaError):
            StarSchema([d1, d2], [Measure("m")])
        with pytest.raises(SchemaError):
            StarSchema([d1], [Measure("m"), Measure("m")])

    def test_dimension_measure_name_clash_rejected(self):
        dim = build_dimension("x", [2])
        with pytest.raises(SchemaError):
            StarSchema([dim], [Measure("x")])

    def test_base_groupby(self, schema):
        assert schema.base_groupby == (2, 2)

    def test_validate_groupby(self, schema):
        assert schema.validate_groupby([1, 0]) == (1, 0)
        with pytest.raises(SchemaError):
            schema.validate_groupby([1])
        with pytest.raises(SchemaError):
            schema.validate_groupby([3, 0])
        with pytest.raises(SchemaError):
            schema.validate_groupby([-1, 0])

    def test_all_groupbys(self, schema):
        groupbys = list(schema.all_groupbys())
        assert len(groupbys) == 9  # (2+1) * (2+1)
        assert len(set(groupbys)) == 9
        assert (0, 0) in groupbys
        assert (2, 2) in groupbys
        assert schema.num_groupbys() == 9

    def test_groupby_cardinality(self, schema):
        assert schema.groupby_cardinality((0, 0)) == 1
        assert schema.groupby_cardinality((1, 0)) == 2
        assert schema.groupby_cardinality((2, 2)) == 4 * 9

    def test_cube_cardinality(self, schema):
        expected = sum(
            schema.groupby_cardinality(g) for g in schema.all_groupbys()
        )
        assert schema.cube_cardinality() == expected

    def test_is_rollup_of(self, schema):
        assert schema.is_rollup_of((1, 0), (2, 2))
        assert schema.is_rollup_of((2, 2), (2, 2))
        assert not schema.is_rollup_of((2, 2), (1, 0))
        assert not schema.is_rollup_of((1, 2), (2, 1))

    def test_repr(self, schema):
        text = repr(schema)
        assert "D0" in text and "sales" in text
