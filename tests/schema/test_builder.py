"""Tests for repro.schema.builder."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SchemaError
from repro.schema.builder import (
    build_dimension,
    build_star_schema,
    random_child_starts,
)


class TestBuildDimension:
    def test_even_fanout(self):
        dim = build_dimension("d", [2, 6])
        assert dim.children_range(1, 0) == (0, 3)
        assert dim.children_range(1, 1) == (3, 6)

    def test_level_names(self):
        dim = build_dimension("d", [2, 4], level_names=["state", "city"])
        assert dim.hierarchy.level(1).name == "state"
        assert dim.hierarchy.level(2).name == "city"

    def test_level_name_count_mismatch(self):
        with pytest.raises(SchemaError):
            build_dimension("d", [2, 4], level_names=["only"])

    def test_random_fanout_deterministic(self):
        d1 = build_dimension("d", [3, 12], fanout="random", seed=42)
        d2 = build_dimension("d", [3, 12], fanout="random", seed=42)
        for ordinal in range(3):
            assert d1.children_range(1, ordinal) == d2.children_range(1, ordinal)

    def test_unknown_fanout_rejected(self):
        with pytest.raises(SchemaError):
            build_dimension("d", [2, 4], fanout="exotic")

    def test_empty_cardinalities_rejected(self):
        with pytest.raises(SchemaError):
            build_dimension("d", [])


class TestRandomChildStarts:
    @given(
        parents=st.integers(1, 30),
        extra=st.integers(0, 100),
        seed=st.integers(0, 10_000),
    )
    def test_invariants(self, parents, extra, seed):
        children = parents + extra
        starts = random_child_starts(parents, children, random.Random(seed))
        assert starts[0] == 0
        assert starts[-1] == children
        assert len(starts) == parents + 1
        assert all(b > a for a, b in zip(starts, starts[1:]))

    def test_too_few_children_rejected(self):
        with pytest.raises(SchemaError):
            random_child_starts(4, 3, random.Random(0))


class TestBuildStarSchema:
    def test_default_names(self):
        schema = build_star_schema([[2, 4], [3, 6]])
        assert [d.name for d in schema.dimensions] == ["D0", "D1"]
        assert schema.measures[0].name == "value"

    def test_custom_names(self):
        schema = build_star_schema(
            [[2]], measure_names=("m",), dimension_names=("time",)
        )
        assert schema.dimension("time").num_levels == 1

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            build_star_schema([[2]], dimension_names=("a", "b"))

    def test_random_fanouts_differ_across_dimensions(self):
        schema = build_star_schema(
            [[3, 30], [3, 30]], fanout="random", seed=9
        )
        ranges0 = [schema.dimensions[0].children_range(1, i) for i in range(3)]
        ranges1 = [schema.dimensions[1].children_range(1, i) for i in range(3)]
        assert ranges0 != ranges1
