"""Tests for repro.schema.dimension."""

import pytest

from repro.exceptions import SchemaError, UnknownMemberError
from repro.schema.dimension import Dimension, DomainIndex
from repro.schema.hierarchy import Hierarchy, Level


class TestDomainIndex:
    def test_roundtrip(self):
        index = DomainIndex(["WI", "IL", "MN"])
        assert index.ordinal_of("IL") == 1
        assert index.value_of(2) == "MN"
        assert len(index) == 3
        assert "WI" in index
        assert "CA" not in index

    def test_unknown_value(self):
        index = DomainIndex(["a"])
        with pytest.raises(UnknownMemberError):
            index.ordinal_of("b")

    def test_unknown_ordinal(self):
        index = DomainIndex(["a"])
        with pytest.raises(UnknownMemberError):
            index.value_of(1)

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            DomainIndex(["a", "a"])

    def test_values_property(self):
        assert DomainIndex(["x", "y"]).values == ("x", "y")


def store_dimension():
    hierarchy = Hierarchy(
        [Level(1, "state", 2), Level(2, "city", 4), Level(3, "store", 8)]
    )
    return Dimension(
        "store",
        hierarchy,
        members={
            1: ["WI", "IL"],
            2: ["Madison", "Milwaukee", "Chicago", "Evanston"],
        },
    )


class TestDimension:
    def test_structure(self):
        dim = store_dimension()
        assert dim.num_levels == 3
        assert dim.leaf_level == 3
        assert dim.leaf_cardinality == 8
        assert dim.cardinality(2) == 4

    def test_named_members(self):
        dim = store_dimension()
        assert dim.ordinal_of(1, "IL") == 1
        assert dim.value_of(2, 0) == "Madison"

    def test_synthetic_members_for_missing_levels(self):
        dim = store_dimension()
        assert dim.value_of(3, 0) == "store/store/0"

    def test_member_count_mismatch_rejected(self):
        hierarchy = Hierarchy([Level(1, "a", 3)])
        with pytest.raises(SchemaError):
            Dimension("d", hierarchy, members={1: ["only", "two"]})

    def test_members_for_unknown_level_rejected(self):
        hierarchy = Hierarchy([Level(1, "a", 1)])
        with pytest.raises(SchemaError):
            Dimension("d", hierarchy, members={2: ["x"]})

    def test_empty_name_rejected(self):
        hierarchy = Hierarchy([Level(1, "a", 1)])
        with pytest.raises(SchemaError):
            Dimension("", hierarchy)

    def test_navigation_delegation(self):
        dim = store_dimension()
        assert dim.children_range(1, 0) == (0, 2)
        assert dim.parent_ordinal(2, 3) == 1
        assert dim.ancestor_ordinal(3, 7, 1) == 1
        assert dim.leaf_range(1, 0) == (0, 4)
        assert dim.descend_range(2, 1, 3) == (2, 4)
        assert dim.map_range(1, (0, 1), 2) == (0, 2)

    def test_domain_index_unknown_level(self):
        dim = store_dimension()
        with pytest.raises(SchemaError):
            dim.domain_index(4)

    def test_repr_mentions_name(self):
        assert "store" in repr(store_dimension())
