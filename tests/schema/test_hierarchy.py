"""Tests for repro.schema.hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SchemaError
from repro.schema.hierarchy import (
    Hierarchy,
    Level,
    even_child_starts,
)


def make_hierarchy(cards, child_starts=None):
    levels = [Level(i + 1, f"L{i + 1}", c) for i, c in enumerate(cards)]
    return Hierarchy(levels, child_starts)


class TestLevel:
    def test_valid(self):
        level = Level(1, "state", 5)
        assert level.number == 1
        assert level.cardinality == 5

    def test_zero_cardinality_rejected(self):
        with pytest.raises(SchemaError):
            Level(1, "state", 0)

    def test_bad_number_rejected(self):
        with pytest.raises(SchemaError):
            Level(0, "state", 5)


class TestConstruction:
    def test_single_level(self):
        h = make_hierarchy([7])
        assert h.size == 1
        assert h.leaf_level == 1
        assert h.cardinality(1) == 7

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Hierarchy([])

    def test_misordered_levels_rejected(self):
        levels = [Level(2, "a", 2), Level(1, "b", 4)]
        with pytest.raises(SchemaError):
            Hierarchy(levels)

    def test_decreasing_cardinality_rejected(self):
        with pytest.raises(SchemaError):
            make_hierarchy([10, 5])

    def test_child_starts_validation_span(self):
        with pytest.raises(SchemaError):
            make_hierarchy([2, 6], child_starts=[(0, 3, 5)])

    def test_child_starts_empty_parent_rejected(self):
        with pytest.raises(SchemaError):
            make_hierarchy([2, 6], child_starts=[(0, 0, 6)])

    def test_wrong_number_of_tables_rejected(self):
        with pytest.raises(SchemaError):
            make_hierarchy([2, 4], child_starts=[(0, 2, 4), (0, 1)])


class TestNavigation:
    @pytest.fixture()
    def hierarchy(self):
        # 2 -> 5 -> 12 with uneven fanouts.
        return make_hierarchy(
            [2, 5, 12],
            child_starts=[(0, 2, 5), (0, 1, 4, 7, 10, 12)],
        )

    def test_children_range(self, hierarchy):
        assert hierarchy.children_range(1, 0) == (0, 2)
        assert hierarchy.children_range(1, 1) == (2, 5)
        assert hierarchy.children_range(2, 2) == (4, 7)

    def test_children_of_leaf_rejected(self, hierarchy):
        with pytest.raises(SchemaError):
            hierarchy.children_range(3, 0)

    def test_parent_ordinal(self, hierarchy):
        assert hierarchy.parent_ordinal(2, 0) == 0
        assert hierarchy.parent_ordinal(2, 1) == 0
        assert hierarchy.parent_ordinal(2, 2) == 1
        assert hierarchy.parent_ordinal(3, 11) == 4

    def test_parent_of_root_level_rejected(self, hierarchy):
        with pytest.raises(SchemaError):
            hierarchy.parent_ordinal(1, 0)

    def test_ancestor_identity(self, hierarchy):
        assert hierarchy.ancestor_ordinal(3, 7, 3) == 7

    def test_ancestor_two_up(self, hierarchy):
        # Leaf 8 -> level-2 parent 3 -> level-1 parent 1.
        assert hierarchy.ancestor_ordinal(3, 8, 1) == 1

    def test_descend_range(self, hierarchy):
        # Parent 0 at level 1 owns level-2 members {0, 1} -> leaves [0, 4).
        assert hierarchy.descend_range(1, 0, 3) == (0, 4)
        assert hierarchy.descend_range(1, 1, 3) == (4, 12)
        assert hierarchy.descend_range(2, 0, 3) == (0, 1)

    def test_map_range(self, hierarchy):
        assert hierarchy.map_range(2, (1, 3), 3) == (1, 7)

    def test_map_range_upward_rejected(self, hierarchy):
        with pytest.raises(SchemaError):
            hierarchy.map_range(3, (0, 2), 1)

    def test_ordinal_bounds_checked(self, hierarchy):
        with pytest.raises(SchemaError):
            hierarchy.children_range(1, 2)

    def test_descend_and_ancestor_are_inverse(self, hierarchy):
        for level in (1, 2):
            for ordinal in range(hierarchy.cardinality(level)):
                lo, hi = hierarchy.descend_range(level, ordinal, 3)
                for leaf in range(lo, hi):
                    assert hierarchy.ancestor_ordinal(3, leaf, level) == ordinal


class TestContainedInterval:
    @pytest.fixture()
    def hierarchy(self):
        return make_hierarchy(
            [2, 5, 12],
            child_starts=[(0, 2, 5), (0, 1, 4, 7, 10, 12)],
        )

    def test_full_domain(self, hierarchy):
        assert hierarchy.contained_interval(2, (0, 12)) == (0, 5)

    def test_partial(self, hierarchy):
        # Leaf [1, 10) fully contains level-2 members 1 (1..4), 2 (4..7),
        # 3 (7..10) but not 0 (0..1) or 4 (10..12).
        assert hierarchy.contained_interval(2, (1, 10)) == (1, 4)

    def test_none_when_too_narrow(self, hierarchy):
        assert hierarchy.contained_interval(1, (1, 6)) is None

    def test_leaf_level_identity(self, hierarchy):
        assert hierarchy.contained_interval(3, (3, 9)) == (3, 9)

    def test_bad_leaf_interval_rejected(self, hierarchy):
        with pytest.raises(SchemaError):
            hierarchy.contained_interval(2, (5, 3))


class TestEvenChildStarts:
    def test_exact_division(self):
        assert even_child_starts(3, 9) == (0, 3, 6, 9)

    def test_remainder_goes_first(self):
        assert even_child_starts(3, 7) == (0, 3, 5, 7)

    def test_one_parent(self):
        assert even_child_starts(1, 4) == (0, 4)

    def test_too_few_children_rejected(self):
        with pytest.raises(SchemaError):
            even_child_starts(5, 3)

    @given(
        parents=st.integers(1, 50),
        extra=st.integers(0, 200),
    )
    def test_properties(self, parents, extra):
        children = parents + extra
        starts = even_child_starts(parents, children)
        assert starts[0] == 0
        assert starts[-1] == children
        sizes = [b - a for a, b in zip(starts, starts[1:])]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1


@given(st.data())
def test_random_hierarchy_descend_ancestor_roundtrip(data):
    """descend_range and ancestor_ordinal agree on random hierarchies."""
    depth = data.draw(st.integers(1, 4))
    cards = [data.draw(st.integers(1, 6))]
    for _ in range(depth - 1):
        cards.append(cards[-1] + data.draw(st.integers(0, 8)))
    h = make_hierarchy(cards)
    level = data.draw(st.integers(1, depth))
    ordinal = data.draw(st.integers(0, cards[level - 1] - 1))
    lo, hi = h.descend_range(level, ordinal, depth)
    assert 0 <= lo < hi <= cards[-1]
    for leaf in range(lo, hi):
        assert h.ancestor_ordinal(depth, leaf, level) == ordinal
