"""The chaos regression matrix: fault kind × rate over a real workload.

Every cell runs the chaos soak on a fresh sharded manager and checks
the degradation contract — every query answers correctly or fails with
a typed :class:`~repro.exceptions.InjectedFault`, byte/benefit and I/O
accounting conserve exactly, and quarantined shards re-admit.
"""

import pytest

from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import get_system, make_chunk_manager
from repro.experiments.multiuser import user_streams
from repro.faults import (
    BACKEND_QUERY,
    CACHE_POISON,
    CACHE_PRESSURE,
    DISK_PERMANENT,
    DISK_SLOW,
    DISK_TRANSIENT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.serve import ChaosConfig, ShardedChunkCache, run_chaos_soak

#: Kinds that degrade service but can never fail a query outright.
HARMLESS_KINDS = frozenset({DISK_SLOW, CACHE_POISON, CACHE_PRESSURE})

NUM_USERS = 4
PER_USER = 10
CONFIG = ChaosConfig(checkpoint_every=10, timeout_seconds=120.0)


@pytest.fixture(scope="module")
def system():
    return get_system(SMOKE_SCALE)


@pytest.fixture(scope="module")
def streams(system):
    return user_streams(system, num_users=NUM_USERS, per_user=PER_USER)


def spec_for(kind, rate):
    if kind == DISK_SLOW:
        return FaultSpec(kind, rate, latency=1.5)
    if kind == CACHE_PRESSURE:
        return FaultSpec(kind, rate, pressure=2)
    return FaultSpec(kind, rate)


def chaos_run(system, streams, spec, seed=99, **store_kwargs):
    cache = ShardedChunkCache(
        system.cache_bytes, num_shards=store_kwargs.pop("num_shards", 4),
        **store_kwargs,
    )
    manager = make_chunk_manager(system, cache=cache)
    oracle_manager = make_chunk_manager(system)
    injector = FaultInjector(FaultPlan(seed=seed, specs=(spec,)))
    report = run_chaos_soak(
        manager,
        streams,
        injector,
        CONFIG,
        oracle=lambda query: oracle_manager.pipeline.execute(query).rows,
    )
    return report, manager


@pytest.mark.parametrize("rate", [0.02, 0.2])
@pytest.mark.parametrize(
    "kind",
    [
        DISK_TRANSIENT,
        DISK_PERMANENT,
        DISK_SLOW,
        BACKEND_QUERY,
        CACHE_POISON,
        CACHE_PRESSURE,
    ],
)
class TestMatrix:
    def test_correct_or_typed_failure(self, system, streams, kind, rate):
        report, manager = chaos_run(system, streams, spec_for(kind, rate))
        total = sum(len(stream) for stream in streams)
        # Every query either answered (and matched the oracle — checked
        # inside the harness) or failed typed; nothing vanished.
        assert report.queries + report.failures == total
        assert report.wrong_answers == 0
        if kind in HARMLESS_KINDS:
            assert report.failures == 0
        # Exact conservation re-stated from the report's own fields.
        assert (
            report.pages_read + report.failed_pages
            == report.disk_read_delta
        )
        assert report.deep_checks > 0
        # The store's cross-shard accounting survived the run.
        manager.cache.check_conservation()
        for failure in report.serve.failures:
            assert failure.kind in ("DiskFault", "BackendFault")


class TestQuarantine:
    def test_poisoned_shard_quarantines_and_readmits(
        self, system, streams
    ):
        report, manager = chaos_run(
            system,
            streams,
            FaultSpec(CACHE_POISON, 1.0),
            num_shards=1,
            quarantine_after=2,
            quarantine_ops=4,
        )
        assert report.failures == 0
        assert report.wrong_answers == 0
        contention = manager.cache.contention()
        assert contention["quarantines"] >= 1
        assert contention["readmissions"] >= 1
        manager.cache.check_conservation()

    def test_quarantine_rejects_count_and_conserve(self, system, streams):
        report, manager = chaos_run(
            system,
            streams,
            FaultSpec(CACHE_POISON, 0.5),
            num_shards=2,
            quarantine_after=2,
            quarantine_ops=8,
        )
        contention = manager.cache.contention()
        stats = manager.cache.stats
        assert stats.poisoned >= contention["quarantines"]
        assert report.pages_read + report.failed_pages == (
            report.disk_read_delta
        )
        manager.cache.check_conservation()
