"""Fixtures for the fault-injection suites: small managers to break."""

from __future__ import annotations

import pytest

from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager


@pytest.fixture()
def small_manager(small_schema, fresh_small_engine):
    """A chunk-cache manager over a private small engine."""
    return ChunkCacheManager(
        small_schema,
        fresh_small_engine.space,
        fresh_small_engine,
        ChunkCache(256_000),
    )
