"""Lock-release regressions: a mid-critical-section fault never wedges.

Every fault site in the stack fires *inside* a lock — the engine's big
lock, a cache shard's lock, a serving worker's turnstile turn.  These
tests throw a fault in each critical section and then prove the lock
came back out: a second thread gets through with a bounded join.
"""

import threading

import numpy as np
import pytest

from repro.core.chunk import CachedChunk, ChunkKey
from repro.core.manager import ChunkCacheManager
from repro.exceptions import BackendFault, CacheError, InjectedFault
from repro.faults import (
    BACKEND_QUERY,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.query.model import StarQuery
from repro.serve import FAIR, ServeSession, ShardedChunkCache
from repro.workload.stream import QueryStream
from tests.conftest import canon_rows

JOIN_TIMEOUT = 30.0


def make_chunk(number=0, rows=4, benefit=1.0):
    data = np.zeros(rows, dtype=[("D0", "i4"), ("sum_v", "f8")])
    key = ChunkKey((1, 1), number, (("v", "sum"),))
    return CachedChunk(key=key, rows=data, benefit=benefit)


def run_in_thread(target):
    """Run ``target`` on a thread; fail the test instead of hanging."""
    result = {}

    def wrapper():
        try:
            result["value"] = target()
        except BaseException as error:  # propagated via result, re-raised
            result["error"] = error

    thread = threading.Thread(target=wrapper, daemon=True)
    thread.start()
    thread.join(timeout=JOIN_TIMEOUT)
    assert not thread.is_alive(), "worker deadlocked behind a held lock"
    if "error" in result:
        raise result["error"]
    return result["value"]


class TestEngineLock:
    def test_engine_lock_released_after_exhaustion(
        self, small_schema, small_manager
    ):
        backend = small_manager.backend
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        expected, _ = backend.answer(query, "scan")

        def always_fail(operation):
            raise BackendFault(
                "injected", operation=operation, transient=True
            )

        backend.fault_hook = always_fail
        with pytest.raises(BackendFault):
            small_manager.answer(query)
        backend.fault_hook = None

        # The big lock was released on the failure path: a *different*
        # thread acquires it and answers within the join deadline.
        rows = run_in_thread(lambda: backend.answer(query, "scan")[0])
        assert canon_rows(rows) == canon_rows(expected)

    def test_engine_lock_released_after_mid_retry_fault(
        self, small_schema, small_manager
    ):
        # The fault fires on the second attempt — deep inside the
        # retry loop, with backoff already accrued.
        backend = small_manager.backend
        query = StarQuery.build(small_schema, (1, 1))
        fired = []

        def fail_twice_then_fail(operation):
            fired.append(operation)
            raise BackendFault(
                "injected", operation=operation, transient=True
            )

        backend.fault_hook = fail_twice_then_fail
        with pytest.raises(BackendFault):
            small_manager.answer(query)
        backend.fault_hook = None
        assert len(fired) == 3

        answer = run_in_thread(lambda: small_manager.answer(query))
        assert len(answer.rows) > 0


class TestShardLock:
    def test_shard_lock_released_after_hook_error(self):
        store = ShardedChunkCache(1_000_000, num_shards=2)
        store.put(make_chunk(number=0))
        store.set_fault_hook(lambda entry: ("bogus", 0))
        with pytest.raises(CacheError, match="unknown cache fault"):
            store.put(make_chunk(number=1))
        store.set_fault_hook(None)

        # The shard lock the failing put held is free again: another
        # thread gets and puts through the same shard set.
        def probe():
            hits = store.get(make_chunk(number=0).key)
            assert store.put(make_chunk(number=2))
            return hits

        run_in_thread(probe)
        store.check_conservation()

    def test_conservation_holds_after_hook_error(self):
        store = ShardedChunkCache(1_000_000, num_shards=4)
        for number in range(8):
            store.put(make_chunk(number=number))
        store.set_fault_hook(lambda entry: ("bogus", 0))
        for number in range(8, 12):
            with pytest.raises(CacheError):
                store.put(make_chunk(number=number))
        store.set_fault_hook(None)
        # The failed puts changed nothing and corrupted nothing.
        assert len(store) == 8
        store.check_conservation()


class TestSessionUnderFaults:
    def test_fair_session_with_tolerated_faults_terminates(
        self, small_schema, fresh_small_engine
    ):
        manager = ChunkCacheManager(
            small_schema,
            fresh_small_engine.space,
            fresh_small_engine,
            ShardedChunkCache(256_000, num_shards=2),
        )
        queries = tuple(
            StarQuery.build(small_schema, (1, 1), {"D0": (n % 3, n % 3 + 2)})
            for n in range(6)
        )
        streams = [
            QueryStream(name="u0", queries=queries),
            QueryStream(name="u1", queries=queries),
        ]
        injector = FaultInjector(
            FaultPlan(seed=5, specs=(FaultSpec(BACKEND_QUERY, 0.5),))
        )
        session = ServeSession(
            manager,
            streams,
            max_workers=2,
            schedule=FAIR,
            timeout_seconds=60.0,
            tolerate=(InjectedFault,),
        )
        with injector.activate(manager):
            report = session.run()
        # A failed query advances the turnstile instead of wedging the
        # other worker: everything is accounted for, nothing hung.
        assert report.queries + len(report.failures) == 12
        assert len(report.failures) > 0
        assert all(f.kind == "BackendFault" for f in report.failures)
        manager.cache.check_conservation()
