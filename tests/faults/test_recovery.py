"""Tests for the recovery policy: retry, degrade, bounded failure.

The backend resolver's contract under injected faults: transient
failures are retried with deterministic backoff; an aggregate-level
fault degrades to recomputing from base chunks; exhaustion re-raises
the typed fault carrying the complete wasted-I/O accounting — and the
answer, when one is produced, is always correct.
"""

import pytest

from repro.backend.plans import CostReport
from repro.exceptions import BackendFault, PipelineError
from repro.pipeline.resolvers import RetryPolicy
from repro.query.model import StarQuery
from tests.conftest import canon_rows


class OneShotFault:
    """A backend fault hook that raises a queue of errors, then passes."""

    def __init__(self, *errors):
        self.pending = list(errors)
        self.fired = 0

    def __call__(self, operation):
        if self.pending:
            self.fired += 1
            raise self.pending.pop(0)


def transient_fault():
    return BackendFault(
        "injected transient", operation="compute_chunks", transient=True
    )


def permanent_fault():
    return BackendFault(
        "injected permanent", operation="compute_chunks", transient=False
    )


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.backoff(0) == pytest.approx(0.5)
        assert policy.backoff(1) == pytest.approx(1.0)
        assert policy.backoff(2) == pytest.approx(2.0)

    def test_zero_attempts_rejected(self):
        with pytest.raises(PipelineError, match="max_attempts"):
            RetryPolicy(max_attempts=0)

    def test_negative_backoff_rejected(self):
        with pytest.raises(PipelineError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(PipelineError):
            RetryPolicy(backoff_factor=-0.5)


class TestRetry:
    def test_transient_fault_is_retried_to_success(
        self, small_schema, small_manager
    ):
        backend = small_manager.backend
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        expected, _ = backend.answer(query, "scan")
        backend.buffer_pool.flush()
        backend.disk.reset_stats()

        hook = OneShotFault(transient_fault())
        backend.fault_hook = hook
        answer = small_manager.answer(query)
        backend.fault_hook = None

        assert hook.fired == 1
        assert canon_rows(answer.rows) == canon_rows(expected)
        stage = answer.trace.stage("resolve:backend")
        assert stage is not None
        assert stage.faults == 1
        assert stage.retries == 1
        assert stage.degraded == 0
        assert stage.backoff_seconds == pytest.approx(0.5)

    def test_wasted_io_is_conserved(self, small_schema, small_manager):
        backend = small_manager.backend
        query = StarQuery.build(small_schema, (1, 1))
        backend.buffer_pool.flush()
        backend.disk.reset_stats()

        backend.fault_hook = OneShotFault(transient_fault())
        answer = small_manager.answer(query)
        backend.fault_hook = None

        # Every page the disk served — including any read by the failed
        # attempt — lands in the answer's accounting record.
        assert answer.record.pages_read == backend.disk.stats.reads

    def test_fault_counters_reach_describe_cache(
        self, small_schema, small_manager
    ):
        backend = small_manager.backend
        backend.fault_hook = OneShotFault(transient_fault())
        small_manager.answer(StarQuery.build(small_schema, (1, 1)))
        backend.fault_hook = None
        faults = small_manager.describe_cache()["faults"]
        assert faults["faults"] >= 1
        assert faults["retries"] >= 1
        assert faults["backoff_seconds"] > 0.0


class TestDegrade:
    def test_aggregate_fault_degrades_to_base(
        self, small_schema, small_manager
    ):
        backend = small_manager.backend
        backend.materialize((1, 1))
        query = StarQuery.build(small_schema, (1, 1))
        expected, _ = backend.answer(query, "scan")
        backend.buffer_pool.flush()
        backend.disk.reset_stats()

        hook = OneShotFault(permanent_fault())
        backend.fault_hook = hook
        answer = small_manager.answer(query)
        backend.fault_hook = None

        assert hook.fired == 1
        assert canon_rows(answer.rows) == canon_rows(expected)
        stage = answer.trace.stage("resolve:backend")
        assert stage is not None
        assert stage.degraded == 1
        assert stage.faults == 1
        assert stage.retries == 0
        assert answer.record.pages_read == backend.disk.stats.reads

    def test_base_fault_does_not_degrade(
        self, small_schema, small_manager
    ):
        # With no materialized aggregate the failed source is already
        # the base table; a permanent fault must fail, not loop.
        backend = small_manager.backend
        backend.fault_hook = OneShotFault(permanent_fault())
        with pytest.raises(BackendFault) as excinfo:
            small_manager.answer(StarQuery.build(small_schema, (1, 1)))
        backend.fault_hook = None
        assert excinfo.value.source_level == "base"
        report = excinfo.value.cost_report
        assert isinstance(report, CostReport)
        assert report.degraded == 0


class TestExhaustion:
    def test_persistent_faults_raise_after_bounded_retries(
        self, small_schema, small_manager
    ):
        backend = small_manager.backend

        def always_fail(operation):
            raise transient_fault()

        backend.fault_hook = always_fail
        with pytest.raises(BackendFault) as excinfo:
            small_manager.answer(StarQuery.build(small_schema, (1, 1)))
        backend.fault_hook = None

        report = excinfo.value.cost_report
        assert isinstance(report, CostReport)
        assert report.faults == 3
        assert report.retries == 2
        # No accounting record for a failed query.
        assert len(small_manager.metrics) == 0

    def test_degrade_then_exhaust(self, small_schema, small_manager):
        backend = small_manager.backend
        backend.materialize((1, 1))
        backend.fault_hook = OneShotFault(
            permanent_fault(), permanent_fault()
        )
        with pytest.raises(BackendFault) as excinfo:
            small_manager.answer(StarQuery.build(small_schema, (1, 1)))
        backend.fault_hook = None
        report = excinfo.value.cost_report
        assert isinstance(report, CostReport)
        assert report.degraded == 1
        assert report.faults == 2

    def test_manager_recovers_after_exhaustion(
        self, small_schema, small_manager
    ):
        backend = small_manager.backend
        query = StarQuery.build(small_schema, (1, 1), {"D0": (1, 4)})
        expected, _ = backend.answer(query, "scan")

        def always_fail(operation):
            raise transient_fault()

        backend.fault_hook = always_fail
        with pytest.raises(BackendFault):
            small_manager.answer(query)
        backend.fault_hook = None

        # The engine's big lock and the cache were released cleanly:
        # the same manager answers the same query correctly afterwards.
        answer = small_manager.answer(query)
        assert canon_rows(answer.rows) == canon_rows(expected)
        assert len(small_manager.metrics) == 1
