"""Fault injection on the 2-tier write path: spills, promotes, torn writes.

The degradation contract for the persistent tier mirrors the read
path's: a failed spill loses a *copy* (never the truth), a failed
promotion is an L2 miss, a torn write is detected by checksum and
quarantined — and the whole circus stays deterministic: the chaos
digest is a pure function of (workload, seed, config), identical at
any worker count.
"""

from types import SimpleNamespace

import pytest

from repro.core.cache import ChunkCache
from repro.core.tiered import TieredChunkCache, chunk_token
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.soakjob import run_chaos_job
from repro.faults import (
    LOG_COMPACT,
    LOG_PERMANENT,
    LOG_TORN,
    PROMOTE_READ,
    SPILL_WRITE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    tiered_specs,
)
from repro.serve import ChaosConfig
from repro.storage.chunklog import ChunkLog
from repro.storage.disk import SimulatedDisk

from tests.core.test_tiered import make_chunk

PAGE = 256


def make_tiered(capacity, **kwargs):
    return TieredChunkCache(
        ChunkCache(capacity), ChunkLog(page_size=PAGE), **kwargs
    )


def injector_for(*specs, seed=7):
    return FaultInjector(FaultPlan(seed=seed, specs=specs))


def activate_on(injector, tiered):
    """Wrap the tiered cache in a minimal duck-typed manager."""
    backend = SimpleNamespace(disk=SimulatedDisk(), fault_hook=None)
    return injector.activate(SimpleNamespace(backend=backend, cache=tiered))


def force_spill(tiered, numbers=(0, 1)):
    """Fill a one-entry L1 so every earlier put gets evicted."""
    for n in numbers:
        tiered.put(make_chunk(number=n, fill=n))


class TestSpillWriteFaults:
    def test_transient_spill_fault_drops_the_copy(self):
        tiered = make_tiered(make_chunk().size_bytes)
        injector = injector_for(FaultSpec(SPILL_WRITE, 1.0))
        with activate_on(injector, tiered):
            force_spill(tiered)
        assert injector.counters()[SPILL_WRITE] >= 2  # first try + retry
        l2 = tiered.tiers()["l2"]
        assert (l2["spills"], l2["spill_faults"]) == (0, 1)
        assert len(tiered.log) == 0  # nothing reached the log
        # The truth is untouched: L1 still serves the resident entry.
        assert tiered.get(make_chunk(number=1).key) is not None
        tiered.check_conservation()  # aborted writes reconcile exactly

    def test_permanent_spill_fault_is_not_retried(self):
        tiered = make_tiered(make_chunk().size_bytes)
        injector = injector_for(FaultSpec(LOG_PERMANENT, 1.0))
        with activate_on(injector, tiered):
            force_spill(tiered)
        assert injector.counters()[LOG_PERMANENT] == 1  # single strike
        assert tiered.tiers()["l2"]["spill_faults"] == 1
        tiered.check_conservation()

    def test_spill_faults_eventually_degrade_the_tier(self):
        tiered = make_tiered(make_chunk().size_bytes, failure_limit=3)
        injector = injector_for(FaultSpec(SPILL_WRITE, 1.0))
        with activate_on(injector, tiered):
            force_spill(tiered, numbers=range(5))
        l2 = tiered.tiers()["l2"]
        assert l2["degraded"] is True
        assert l2["spill_faults"] == 3  # strikes stop once disabled


class TestPromoteReadFaults:
    def test_transient_promote_fault_is_an_l2_miss(self):
        tiered = make_tiered(make_chunk().size_bytes)
        force_spill(tiered)  # entry 0 now lives only in the log
        key = make_chunk(number=0).key
        injector = injector_for(FaultSpec(PROMOTE_READ, 1.0))
        with activate_on(injector, tiered):
            assert tiered.get(key) is None
        assert injector.counters()[PROMOTE_READ] >= 2  # first try + retry
        l2 = tiered.tiers()["l2"]
        assert l2["promote_faults"] == 1
        assert l2["degraded"] is False
        # The record survived: with faults gone, promotion succeeds.
        got = tiered.get(key)
        assert got is not None and got.rows["D0"][0] == 0
        tiered.check_conservation()

    def test_permanent_promote_fault_keys_by_page(self):
        tiered = make_tiered(make_chunk().size_bytes)
        force_spill(tiered)
        key = make_chunk(number=0).key
        injector = injector_for(FaultSpec(LOG_PERMANENT, 1.0))
        with activate_on(injector, tiered):
            assert tiered.get(key) is None
            assert tiered.get(key) is None  # dead page stays dead
        assert injector.counters()[LOG_PERMANENT] == 2
        assert tiered.tiers()["l2"]["promote_faults"] == 2
        tiered.check_conservation()


class TestTornWriteQuarantine:
    def test_torn_spill_is_quarantined_at_promotion(self):
        tiered = make_tiered(make_chunk().size_bytes)
        injector = injector_for(FaultSpec(LOG_TORN, 1.0))
        with activate_on(injector, tiered):
            force_spill(tiered)
            key = make_chunk(number=0).key
            token = chunk_token(key)
            assert token in tiered.log  # the spill "succeeded"
            # ...but the checksum catches the corruption on promotion:
            # a miss and a quarantine, never a wrong answer.
            assert tiered.get(key) is None
        assert injector.counters()[LOG_TORN] == 1
        assert tiered.log.stats.torn_writes == 1
        assert tiered.log.stats.crc_failures == 1
        l2 = tiered.tiers()["l2"]
        assert l2["quarantined"] == 1
        assert token not in tiered.log

    def test_hooks_are_restored_on_exit(self):
        tiered = make_tiered(1_000)
        injector = injector_for(FaultSpec(LOG_TORN, 1.0))
        with activate_on(injector, tiered):
            assert tiered.log.torn_hook == injector.torn_write
            assert tiered.log.disk.write_hook == injector.spill_write
            assert tiered.log.disk.read_hook == injector.promote_read
        assert tiered.log.torn_hook is None
        assert tiered.log.disk.write_hook is None
        assert tiered.log.disk.read_hook is None


class TestTieredSpecs:
    def test_extends_standard_mix(self):
        from repro.faults import standard_specs

        base = standard_specs("mid")
        extended = tiered_specs("mid")
        assert extended[: len(base)] == base  # pinned digests never move
        kinds = {spec.kind for spec in extended[len(base):]}
        assert kinds == {SPILL_WRITE, PROMOTE_READ, LOG_TORN, LOG_COMPACT}

    def test_high_arms_dead_pages(self):
        kinds = {spec.kind for spec in tiered_specs("high")}
        assert LOG_PERMANENT in kinds

    def test_unknown_preset_rejected(self):
        from repro.exceptions import FaultError

        with pytest.raises(FaultError):
            tiered_specs("apocalyptic")


CHAOS_ARGS = dict(
    scale=SMOKE_SCALE,
    rate="mid",
    seed=20260806,
    num_users=4,
    per_user=20,
    num_shards=4,
    with_oracle=False,
    cache_tiers=2,
)


class TestTieredChaosDigest:
    """The 2-tier chaos digest is schedule-independent — for every
    L2 backend: the digest is a pure function of (workload, seed,
    config), and the backend is part of the config, not the schedule."""

    @pytest.fixture(scope="class", params=["chunklog", "sqlite"])
    def runs(self, request):
        return {
            workers: run_chaos_job(
                config=ChaosConfig(
                    max_workers=workers,
                    checkpoint_every=25,
                    timeout_seconds=120.0,
                ),
                l2_backend=request.param,
                **CHAOS_ARGS,
            )
            for workers in (1, 2, 4)
        }

    def test_digest_identical_across_worker_counts(self, runs):
        digests = {workers: run["digest"] for workers, run in runs.items()}
        assert len(set(digests.values())) == 1, digests

    def test_fault_counters_identical_across_worker_counts(self, runs):
        counters = [run["fault_counters"] for run in runs.values()]
        assert counters[0] == counters[1] == counters[2]

    def test_tier_summary_present_and_identical(self, runs):
        tiers = [run["tiers"] for run in runs.values()]
        assert tiers[0] == tiers[1] == tiers[2]
        assert runs[1]["cache_tiers"] == 2
        assert runs[1]["tiers"]["l2"]["spills"] > 0  # the tier saw traffic

    def test_one_tier_summary_has_no_tier_keys(self):
        run = run_chaos_job(
            config=ChaosConfig(
                max_workers=2, checkpoint_every=25, timeout_seconds=120.0
            ),
            **{**CHAOS_ARGS, "cache_tiers": 1},
        )
        assert "tiers" not in run
        assert "cache_tiers" not in run
