"""Tests for repro.faults.plan — the seeded pure-function schedule."""

import pytest

from repro.exceptions import FaultError
from repro.faults import (
    BACKEND_QUERY,
    CACHE_POISON,
    CACHE_PRESSURE,
    DISK_PERMANENT,
    DISK_SLOW,
    DISK_TRANSIENT,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    standard_specs,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultSpec("disk-explodes", 0.1)

    @pytest.mark.parametrize("rate", [-0.01, 1.01, 2.0])
    def test_rate_outside_unit_interval_rejected(self, rate):
        with pytest.raises(FaultError, match="rate"):
            FaultSpec(DISK_TRANSIENT, rate)

    def test_negative_latency_rejected(self):
        with pytest.raises(FaultError, match="latency"):
            FaultSpec(DISK_SLOW, 0.1, latency=-1.0)

    def test_zero_pressure_rejected(self):
        with pytest.raises(FaultError, match="pressure"):
            FaultSpec(CACHE_PRESSURE, 0.1, pressure=0)

    def test_boundary_rates_accepted(self):
        FaultSpec(DISK_TRANSIENT, 0.0)
        FaultSpec(DISK_TRANSIENT, 1.0)


class TestFaultPlan:
    def test_duplicate_kinds_rejected(self):
        with pytest.raises(FaultError, match="duplicate"):
            FaultPlan(
                seed=1,
                specs=(
                    FaultSpec(DISK_TRANSIENT, 0.1),
                    FaultSpec(DISK_TRANSIENT, 0.2),
                ),
            )

    def test_specs_coerced_to_tuple(self):
        plan = FaultPlan(seed=1, specs=[FaultSpec(CACHE_POISON, 0.5)])
        assert isinstance(plan.specs, tuple)

    def test_spec_lookup(self):
        spec = FaultSpec(BACKEND_QUERY, 0.25)
        plan = FaultPlan(seed=1, specs=(spec,))
        assert plan.spec(BACKEND_QUERY) is spec
        assert plan.spec(DISK_SLOW) is None

    def test_empty_plan_never_faults(self):
        plan = FaultPlan(seed=1, specs=())
        assert not any(
            plan.roll(kind, "site", n)
            for kind in FAULT_KINDS
            for n in range(50)
        )

    def test_rate_one_always_faults(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(DISK_TRANSIENT, 1.0),))
        assert all(
            plan.roll(DISK_TRANSIENT, "disk.read", n) for n in range(50)
        )

    def test_rate_zero_never_faults(self):
        plan = FaultPlan(seed=1, specs=(FaultSpec(DISK_TRANSIENT, 0.0),))
        assert not any(
            plan.roll(DISK_TRANSIENT, "disk.read", n) for n in range(50)
        )


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=42, specs=standard_specs("mid"))
        b = FaultPlan(seed=42, specs=standard_specs("mid"))
        decisions_a = [
            a.roll(DISK_TRANSIENT, "disk.read", n) for n in range(500)
        ]
        decisions_b = [
            b.roll(DISK_TRANSIENT, "disk.read", n) for n in range(500)
        ]
        assert decisions_a == decisions_b

    def test_rolls_are_order_independent(self):
        plan = FaultPlan(seed=7, specs=standard_specs("mid"))
        forward = [
            plan.roll(DISK_TRANSIENT, "disk.read", n) for n in range(100)
        ]
        backward = [
            plan.roll(DISK_TRANSIENT, "disk.read", n)
            for n in reversed(range(100))
        ]
        assert forward == list(reversed(backward))

    def test_different_seeds_diverge(self):
        a = FaultPlan(seed=1, specs=(FaultSpec(DISK_TRANSIENT, 0.5),))
        b = FaultPlan(seed=2, specs=(FaultSpec(DISK_TRANSIENT, 0.5),))
        decisions_a = [
            a.roll(DISK_TRANSIENT, "disk.read", n) for n in range(200)
        ]
        decisions_b = [
            b.roll(DISK_TRANSIENT, "disk.read", n) for n in range(200)
        ]
        assert decisions_a != decisions_b

    def test_sites_roll_independently(self):
        plan = FaultPlan(seed=9, specs=(FaultSpec(DISK_TRANSIENT, 0.5),))
        site_a = [
            plan.roll(DISK_TRANSIENT, "disk.read", n) for n in range(200)
        ]
        site_b = [
            plan.roll(DISK_TRANSIENT, "other.site", n) for n in range(200)
        ]
        assert site_a != site_b

    def test_empirical_rate_tracks_configured_rate(self):
        plan = FaultPlan(seed=3, specs=(FaultSpec(DISK_TRANSIENT, 0.2),))
        fired = sum(
            plan.roll(DISK_TRANSIENT, "disk.read", n) for n in range(5000)
        )
        assert 0.15 < fired / 5000 < 0.25


class TestStandardSpecs:
    @pytest.mark.parametrize("rate", ["low", "mid", "high"])
    def test_presets_arm_at_least_three_kinds(self, rate):
        specs = standard_specs(rate)
        armed = [spec.kind for spec in specs if spec.rate > 0.0]
        assert len(set(armed)) >= 3

    def test_high_arms_permanent_faults(self):
        kinds = {spec.kind for spec in standard_specs("high")}
        assert DISK_PERMANENT in kinds
        assert DISK_PERMANENT not in {
            spec.kind for spec in standard_specs("mid")
        }

    def test_presets_scale_monotonically(self):
        def rate_of(preset, kind):
            plan = FaultPlan(seed=1, specs=standard_specs(preset))
            spec = plan.spec(kind)
            assert spec is not None
            return spec.rate

        for kind in (DISK_TRANSIENT, BACKEND_QUERY, CACHE_POISON):
            assert (
                rate_of("low", kind)
                < rate_of("mid", kind)
                < rate_of("high", kind)
            )

    def test_unknown_preset_rejected(self):
        with pytest.raises(FaultError, match="preset"):
            standard_specs("catastrophic")
