"""The tier-1 chaos smoke gate.

One small chaos soak runs as part of the ordinary test suite: deep
invariants on, at least three fault kinds firing, zero wrong answers
against the fault-free oracle, exact I/O conservation, and a digest
that reproduces bit-for-bit on a back-to-back rerun.  A separate test
pins the other half of the contract — with faults disabled the stack
behaves identically to one that has never seen the fault layer.
"""

import pytest

from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import get_system, make_chunk_manager
from repro.experiments.multiuser import user_streams
from repro.experiments.soakjob import run_chaos_job
from repro.faults import FaultInjector, FaultPlan
from repro.serve import ChaosConfig

CONFIG = ChaosConfig(checkpoint_every=25, timeout_seconds=120.0)
JOB_ARGS = dict(
    scale=SMOKE_SCALE,
    rate="mid",
    seed=20260806,
    num_users=4,
    per_user=20,
    num_shards=4,
    config=CONFIG,
)


@pytest.fixture(scope="module")
def first_run():
    return run_chaos_job(with_oracle=True, **JOB_ARGS)


@pytest.fixture(scope="module")
def second_run(first_run):
    # Ordered after first_run so the runs are strictly back-to-back.
    return run_chaos_job(with_oracle=False, **JOB_ARGS)


class TestChaosSmoke:
    def test_no_wrong_answers(self, first_run):
        assert first_run["oracle_replayed"] is True
        assert first_run["wrong_answers"] == 0

    def test_at_least_three_fault_kinds_fired(self, first_run):
        fired = {
            kind
            for kind, count in first_run["fault_counters"].items()
            if count > 0
        }
        assert len(fired) >= 3, f"only {sorted(fired)} fired"

    def test_exact_io_conservation(self, first_run):
        assert (
            first_run["pages_read"] + first_run["failed_pages"]
            == first_run["disk_read_delta"]
        )

    def test_deep_invariants_and_checkpoints_ran(self, first_run):
        assert first_run["deep_checks"] > 0
        assert first_run["checkpoints"] >= 1

    def test_every_query_accounted(self, first_run):
        total = JOB_ARGS["num_users"] * JOB_ARGS["per_user"]
        assert first_run["queries"] + first_run["failures"] == total
        assert first_run["failures"] > 0

    def test_digest_reproduces_back_to_back(self, first_run, second_run):
        assert first_run["digest"] == second_run["digest"]
        assert first_run["fault_counters"] == second_run["fault_counters"]
        assert first_run["queries"] == second_run["queries"]


class TestFaultsDisabledBitIdentity:
    def test_empty_plan_is_invisible(self):
        # An activated-but-empty fault plan must leave no trace at all:
        # identical per-query accounting records, zero fault counters.
        system = get_system(SMOKE_SCALE)
        streams = user_streams(system, num_users=2, per_user=6)
        queries = [query for stream in streams for query in stream]

        baseline = make_chunk_manager(system)
        plain = [repr(baseline.answer(query).record) for query in queries]

        manager = make_chunk_manager(system)
        injector = FaultInjector(FaultPlan(seed=1, specs=()))
        with injector.activate(manager):
            hooked = [
                repr(manager.answer(query).record) for query in queries
            ]

        assert hooked == plain
        assert injector.counters() == {}
        faults = manager.describe_cache()["faults"]
        assert all(value == 0 for value in faults.values())
