"""Tests for repro.faults.injector and the hooks it drives.

Covers each layer's hook in isolation — disk reads, backend entry
points, cache puts — plus installation/restoration via ``activate``.
"""

import numpy as np
import pytest

from repro.core.cache import ChunkCache
from repro.core.chunk import CachedChunk, ChunkKey
from repro.exceptions import (
    BackendFault,
    CacheError,
    DiskFault,
    FaultError,
    InjectedFault,
)
from repro.faults import (
    BACKEND_QUERY,
    CACHE_POISON,
    CACHE_PRESSURE,
    DISK_PERMANENT,
    DISK_SLOW,
    DISK_TRANSIENT,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.serve import ShardedChunkCache
from repro.storage.disk import SimulatedDisk


def injector_for(*specs, seed=17):
    return FaultInjector(FaultPlan(seed=seed, specs=tuple(specs)))


def make_chunk(number=0, rows=4, benefit=1.0):
    data = np.zeros(rows, dtype=[("D0", "i4"), ("sum_v", "f8")])
    key = ChunkKey((1, 1), number, (("v", "sum"),))
    return CachedChunk(key=key, rows=data, benefit=benefit)


class TestDiskReadHook:
    def test_transient_fault_raises_and_counts(self):
        injector = injector_for(FaultSpec(DISK_TRANSIENT, 1.0))
        with pytest.raises(DiskFault) as excinfo:
            injector.disk_read(7)
        assert excinfo.value.transient
        assert excinfo.value.page_id == 7
        assert injector.counters() == {DISK_TRANSIENT: 1}

    def test_transient_faults_are_exceptions_not_the_rule(self):
        injector = injector_for(FaultSpec(DISK_TRANSIENT, 0.2))
        outcomes = []
        for page in range(200):
            try:
                injector.disk_read(page)
                outcomes.append(True)
            except DiskFault:
                outcomes.append(False)
        assert 0 < outcomes.count(False) < 100

    def test_permanent_fault_is_keyed_by_page(self):
        # Rate 0.5 over page ids: some pages are dead, and a dead page
        # stays dead on every retry while live pages never die.
        injector = injector_for(FaultSpec(DISK_PERMANENT, 0.5))
        dead = set()
        for page in range(40):
            try:
                injector.disk_read(page)
            except DiskFault as fault:
                assert not fault.transient
                dead.add(page)
        assert dead and len(dead) < 40
        for page in range(40):
            if page in dead:
                with pytest.raises(DiskFault):
                    injector.disk_read(page)
            else:
                injector.disk_read(page)

    def test_slow_fault_returns_latency(self):
        injector = injector_for(FaultSpec(DISK_SLOW, 1.0, latency=2.5))
        assert injector.disk_read(3) == pytest.approx(2.5)
        assert injector.counters() == {DISK_SLOW: 1}

    def test_reset_restores_initial_state(self):
        injector = injector_for(FaultSpec(DISK_TRANSIENT, 0.3))
        first = []
        for page in range(50):
            try:
                injector.disk_read(page)
                first.append(True)
            except DiskFault:
                first.append(False)
        injector.reset()
        assert injector.counters() == {}
        second = []
        for page in range(50):
            try:
                injector.disk_read(page)
                second.append(True)
            except DiskFault:
                second.append(False)
        assert first == second


class TestDiskIntegration:
    def test_faulted_read_moves_no_counters(self):
        disk = SimulatedDisk(page_size=64)
        disk.allocate(4)
        disk.write_page(0, b"x" * 64)
        injector = injector_for(FaultSpec(DISK_TRANSIENT, 1.0))
        disk.read_hook = injector.disk_read
        before = disk.stats.copy()
        with pytest.raises(DiskFault):
            disk.read_page(0)
        assert disk.stats.reads == before.reads
        assert disk.stats.fault_latency == before.fault_latency

    def test_slow_read_charges_fault_latency(self):
        disk = SimulatedDisk(page_size=64)
        disk.allocate(4)
        disk.write_page(0, b"x" * 64)
        injector = injector_for(FaultSpec(DISK_SLOW, 1.0, latency=2.0))
        disk.read_hook = injector.disk_read
        disk.read_page(0)
        disk.read_page(1)
        assert disk.stats.reads == 2
        assert disk.stats.fault_latency == pytest.approx(4.0)
        delta = disk.stats.delta(disk.stats.copy())
        assert delta.fault_latency == pytest.approx(0.0)


class TestBackendHook:
    def test_backend_fault_raises_typed(self):
        injector = injector_for(FaultSpec(BACKEND_QUERY, 1.0))
        with pytest.raises(BackendFault) as excinfo:
            injector.backend_op("compute_chunks")
        assert excinfo.value.operation == "compute_chunks"
        assert isinstance(excinfo.value, InjectedFault)

    def test_sites_are_independent(self):
        injector = injector_for(FaultSpec(BACKEND_QUERY, 0.5), seed=23)
        outcomes = {}
        for operation in ("compute_chunks", "answer"):
            fired = 0
            for _ in range(100):
                try:
                    injector.backend_op(operation)
                except BackendFault:
                    fired += 1
            outcomes[operation] = fired
        assert all(0 < fired < 100 for fired in outcomes.values())


class TestCachePutHook:
    def test_poison_rejects_put_and_counts(self):
        cache = ChunkCache(100_000)
        injector = injector_for(FaultSpec(CACHE_POISON, 1.0))
        cache.fault_hook = injector.cache_put
        entry = make_chunk()
        assert cache.put(entry) is False
        assert len(cache) == 0
        assert cache.used_bytes == 0
        assert cache.stats.poisoned == 1

    def test_pressure_sheds_before_inserting(self):
        cache = ChunkCache(1_000_000)
        for number in range(6):
            assert cache.put(make_chunk(number=number))
        injector = injector_for(
            FaultSpec(CACHE_PRESSURE, 1.0, pressure=2)
        )
        cache.fault_hook = injector.cache_put
        assert cache.put(make_chunk(number=6))
        # 6 resident - 2 shed + 1 inserted.
        assert len(cache) == 5
        assert cache.stats.pressure_evictions == 2

    def test_shed_is_bounded_by_population(self):
        cache = ChunkCache(1_000_000)
        cache.put(make_chunk(number=0))
        assert cache.shed(10) == 1
        assert len(cache) == 0

    def test_unknown_fault_kind_rejected(self):
        cache = ChunkCache(100_000)
        cache.fault_hook = lambda entry: ("bogus", 0)
        with pytest.raises(CacheError, match="unknown cache fault"):
            cache.put(make_chunk())

    def test_sharded_cache_distributes_hook(self):
        store = ShardedChunkCache(1_000_000, num_shards=4)
        injector = injector_for(FaultSpec(CACHE_POISON, 1.0))
        store.set_fault_hook(injector.cache_put)
        assert store.put(make_chunk()) is False
        assert store.stats.poisoned == 1
        store.set_fault_hook(None)
        assert store.put(make_chunk()) is True
        store.check_conservation()


class TestActivate:
    def test_installs_and_restores_hooks(self, small_manager):
        backend = small_manager.backend
        injector = injector_for(FaultSpec(DISK_TRANSIENT, 0.5))
        assert backend.disk.read_hook is None
        assert backend.fault_hook is None
        assert small_manager.cache.fault_hook is None
        with injector.activate(small_manager):
            assert backend.disk.read_hook == injector.disk_read
            assert backend.fault_hook == injector.backend_op
            assert small_manager.cache.fault_hook == injector.cache_put
        assert backend.disk.read_hook is None
        assert backend.fault_hook is None
        assert small_manager.cache.fault_hook is None

    def test_restores_on_exception(self, small_manager):
        injector = injector_for(FaultSpec(DISK_TRANSIENT, 0.5))
        with pytest.raises(RuntimeError):
            with injector.activate(small_manager):
                raise RuntimeError("boom")
        assert small_manager.backend.disk.read_hook is None
        assert small_manager.backend.fault_hook is None
        assert small_manager.cache.fault_hook is None

    def test_requires_a_manager_shape(self):
        injector = injector_for(FaultSpec(DISK_TRANSIENT, 0.5))
        with pytest.raises(FaultError, match="backend"):
            with injector.activate(object()):
                pass
