"""Tests for repro.experiments.harness at smoke scale."""

import pytest

from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.harness import (
    build_system,
    get_system,
    make_chunk_manager,
    make_mix_stream,
    make_query_manager,
    reset_backend,
    run_stream,
)
from repro.workload.generator import EQPR, RANDOM


@pytest.fixture(scope="module")
def system():
    return build_system(SMOKE_SCALE)


class TestBuildSystem:
    def test_components(self, system):
        assert system.schema.num_dimensions == 4
        assert system.backend.num_records == SMOKE_SCALE.num_tuples
        assert system.backend.organization == "chunked"
        assert system.cache_bytes == int(
            system.cube_bytes * SMOKE_SCALE.cache_fraction_of_cube
        )

    def test_chunk_ratio_override(self):
        coarse = build_system(SMOKE_SCALE, chunk_ratio=0.5)
        assert (
            coarse.space.base_grid.num_chunks
            < build_system(SMOKE_SCALE).space.base_grid.num_chunks
        )

    def test_get_system_memoizes(self):
        assert get_system(SMOKE_SCALE) is get_system(SMOKE_SCALE)
        assert get_system(SMOKE_SCALE) is not get_system(
            SMOKE_SCALE, chunk_ratio=0.5
        )


class TestManagers:
    def test_chunk_manager_uses_system_budget(self, system):
        manager = make_chunk_manager(system)
        assert manager.cache.capacity_bytes == system.cache_bytes

    def test_budget_override(self, system):
        manager = make_chunk_manager(system, cache_bytes=12345)
        assert manager.cache.capacity_bytes == 12345

    def test_reset_backend_clears_state(self, system):
        system.backend.disk.stats.reads = 99
        reset_backend(system)
        assert system.backend.disk.stats.reads == 0
        assert len(system.backend.buffer_pool) == 0

    def test_query_manager(self, system):
        manager = make_query_manager(system, cache_bytes=10_000)
        assert manager.capacity_bytes == 10_000


class TestRunStream:
    def test_run_collects_metrics(self, system):
        stream = make_mix_stream(system, EQPR, num_queries=15)
        manager = make_chunk_manager(system)
        metrics = run_stream(manager, stream)
        assert len(metrics) == 15
        assert metrics.mean_time() > 0

    def test_verified_run_chunk_scheme(self, system):
        """Every 5th answer cross-checked against a backend scan."""
        stream = make_mix_stream(system, RANDOM, num_queries=10)
        manager = make_chunk_manager(system)
        run_stream(manager, stream, verify_every=5)

    def test_verified_run_query_scheme(self, system):
        stream = make_mix_stream(system, RANDOM, num_queries=10)
        manager = make_query_manager(system)
        run_stream(manager, stream, verify_every=5)

    def test_streams_deterministic(self, system):
        a = make_mix_stream(system, EQPR, num_queries=5)
        b = make_mix_stream(system, EQPR, num_queries=5)
        assert a.queries == b.queries
