"""Unit tests for individual experiment modules' helpers and knobs."""

import pytest

from repro.core.metrics import QueryRecord, StreamMetrics
from repro.experiments import csr_sim, fig12, fig14
from repro.experiments.configs import SMOKE_SCALE
from repro.exceptions import ExperimentError


class TestCsrSimHelpers:
    def test_tail_csr_uses_late_records(self):
        metrics = StreamMetrics()
        # Early: all misses; late: all hits.
        for _ in range(10):
            metrics.record(
                QueryRecord(time=1, full_cost=10, saved_cost=0,
                            chunks_total=1, chunks_hit=0)
            )
        for _ in range(10):
            metrics.record(
                QueryRecord(time=0, full_cost=10, saved_cost=10,
                            chunks_total=1, chunks_hit=1)
            )
        assert metrics.cost_saving_ratio() == pytest.approx(0.5)
        assert csr_sim._tail_csr(metrics, fraction=0.5) == pytest.approx(1.0)

    def test_tail_csr_empty(self):
        assert csr_sim._tail_csr(StreamMetrics()) == 0.0

    def test_tail_csr_zero_cost_tail(self):
        """Regression (R002): a free-query tail is 0.0, not 0/0 — guarded
        by ordering, so denormal-tiny totals divide normally too."""
        metrics = StreamMetrics()
        for _ in range(4):
            metrics.record(
                QueryRecord(time=0, full_cost=0.0, saved_cost=0.0,
                            chunks_total=1, chunks_hit=1)
            )
        assert csr_sim._tail_csr(metrics, fraction=0.5) == 0.0
        metrics.record(
            QueryRecord(time=0, full_cost=5e-324, saved_cost=5e-324,
                        chunks_total=1, chunks_hit=1)
        )
        assert csr_sim._tail_csr(metrics, fraction=0.2) == pytest.approx(1.0)

    def test_stream_multiplier_matches_paper_ratio(self):
        # Paper: 5000-query simulation against 1500-query streams.
        assert csr_sim.STREAM_MULTIPLIER == pytest.approx(5000 / 1500)


class TestFig12Knobs:
    def test_ratios_cover_both_extremes(self):
        assert min(fig12.CHUNK_RATIOS) <= 0.1
        assert max(fig12.CHUNK_RATIOS) >= 0.5

    def test_stream_capped(self):
        scale = SMOKE_SCALE.with_overrides(num_queries=10_000)
        # run() internally caps; the cap constant must be sane.
        assert fig12.MAX_QUERIES <= 1000


class TestFig14Builder:
    def test_builder_validation(self):
        with pytest.raises(ExperimentError):
            fig14.build_bitmap_setup(distinct_values=2)

    def test_same_data_both_organizations(self):
        setup = fig14.build_bitmap_setup(
            distinct_values=40, density=0.3, tuples_per_cell=1,
            page_size=1024,
        )
        random_rows = sorted(
            map(tuple, setup.random_engine.fact_file.read_all().tolist())
        )
        chunked_rows = sorted(
            map(tuple, setup.chunked_engine.fact_file.read_all().tolist())
        )
        assert random_rows == chunked_rows

    def test_random_engine_not_clustered(self):
        import numpy as np

        from repro.storage.chunkedfile import tuple_chunk_numbers

        setup = fig14.build_bitmap_setup(
            distinct_values=40, density=0.3, tuples_per_cell=1,
            page_size=1024,
        )
        stored = setup.random_engine.fact_file.read_all()
        numbers = tuple_chunk_numbers(
            setup.random_engine.space.base_grid, stored, ("A", "B")
        )
        assert not np.all(np.diff(numbers) >= 0)
