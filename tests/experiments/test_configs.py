"""Tests for repro.experiments.configs."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.configs import (
    DEFAULT_SCALE,
    PAPER_SCALE,
    SMOKE_SCALE,
    TABLE1_CARDINALITIES,
    TABLE1_HIERARCHY_SIZES,
    Scale,
    build_paper_schema,
    cube_size_bytes,
)


class TestPaperConstants:
    def test_table1_shape(self):
        assert TABLE1_HIERARCHY_SIZES == (3, 2, 3, 2)
        assert TABLE1_CARDINALITIES[0] == (25, 50, 100)
        assert TABLE1_CARDINALITIES[2] == (5, 25, 50)

    def test_schema_matches_table1(self):
        schema = build_paper_schema()
        assert schema.num_dimensions == 4
        for dim, cards in zip(schema.dimensions, TABLE1_CARDINALITIES):
            assert dim.num_levels == len(cards)
            for level, card in enumerate(cards, start=1):
                assert dim.cardinality(level) == card

    def test_cube_lattice_size(self):
        schema = build_paper_schema()
        # (3+1)(2+1)(3+1)(2+1) = 144 group-bys.
        assert schema.num_groupbys() == 144


class TestScale:
    def test_paper_scale(self):
        assert PAPER_SCALE.num_tuples == 500_000
        assert PAPER_SCALE.num_queries == 1500

    def test_default_smaller_than_paper(self):
        assert DEFAULT_SCALE.num_tuples < PAPER_SCALE.num_tuples
        assert SMOKE_SCALE.num_tuples < DEFAULT_SCALE.num_tuples

    def test_with_overrides(self):
        scale = DEFAULT_SCALE.with_overrides(num_tuples=123)
        assert scale.num_tuples == 123
        assert scale.num_queries == DEFAULT_SCALE.num_queries

    def test_validation(self):
        with pytest.raises(ExperimentError):
            Scale(num_tuples=0)
        with pytest.raises(ExperimentError):
            Scale(chunk_ratio=0)
        with pytest.raises(ExperimentError):
            Scale(cache_fraction_of_cube=2.0)

    def test_hashable(self):
        assert hash(Scale()) == hash(Scale())


class TestCubeSize:
    def test_uncapped_larger_than_capped(self):
        schema = build_paper_schema()
        assert cube_size_bytes(schema) > cube_size_bytes(schema, 10_000)

    def test_paper_ballpark(self):
        """500k tuples should give a cube of a few hundred MB (paper: 300)."""
        schema = build_paper_schema()
        size = cube_size_bytes(schema, 500_000)
        assert 150e6 < size < 800e6

    def test_negative_rejected(self):
        with pytest.raises(ExperimentError):
            cube_size_bytes(build_paper_schema(), -5)
