"""Deep-invariant smoke run: zero violations, output identical to default.

The invariant layer must be an *observer*: running the Section 6.1.4
CSR simulation with ``REPRO_INVARIANTS=deep`` has to complete without a
single :class:`~repro.exceptions.InvariantViolation` while exercising
every deep check (closure, partition coverage, cache conservation), and
the experiment's rendered result must be bit-identical to the default
(cheap) mode — checking must never perturb what is computed.
"""

from repro import invariants
from repro.experiments import csr_sim
from repro.experiments.configs import SMOKE_SCALE


def run_at(mode: str) -> tuple[str, dict[str, int]]:
    previous = invariants.set_mode(mode)
    invariants.reset_counters()
    try:
        rendered = csr_sim.run(SMOKE_SCALE).render()
        return rendered, invariants.counters()
    finally:
        invariants.set_mode(previous)


def test_deep_mode_smoke_is_clean_and_bit_identical():
    baseline, _ = run_at("cheap")
    deep, counts = run_at("deep")
    # Deep checks genuinely executed (closure + partition + accounting)
    # and none raised — reaching this line means zero violations.
    assert counts["deep"] > 100
    assert counts["cheap"] > 100
    assert deep == baseline
