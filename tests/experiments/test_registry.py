"""Smoke tests for the experiment registry: every experiment runs and
produces the paper's expected *shape* at SMOKE scale where feasible."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import registry
from repro.experiments.configs import SMOKE_SCALE
from repro.experiments.fig14 import build_bitmap_setup


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(registry.EXPERIMENTS) == {
            "table1", "table2", "fig9", "fig10", "csr_sim",
            "fig11", "fig12", "fig13", "fig14", "feller", "multiuser",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            registry.run_experiment("fig99")


class TestTables:
    def test_table1_matches_paper(self):
        result = registry.run_experiment("table1")
        assert result.notes == "matches the paper exactly"
        assert len(result.rows) == 3

    def test_table2_mixes(self):
        result = registry.run_experiment("table2", SMOKE_SCALE)
        assert result.column("Stream") == ["Random", "EQPR", "Proximity"]
        realized = result.column("realized_proximity")
        # Random stream has no proximity; Proximity stream is mostly so.
        assert realized[0] < 0.1
        assert realized[2] > 0.5


@pytest.mark.slow
class TestFigureShapes:
    """Each figure's headline shape, at smoke scale."""

    def test_fig9_chunk_beats_query_with_locality(self):
        result = registry.run_experiment("fig9", SMOKE_SCALE)
        by_key = {
            (row["stream"], row["scheme"]): row for row in result.rows
        }
        # At the highest-locality stream the chunk scheme must win on CSR.
        assert (
            by_key[("Proximity", "chunk")]["csr"]
            > by_key[("Proximity", "query")]["csr"]
        )
        assert (
            by_key[("Proximity", "chunk")]["mean_time_last"]
            < by_key[("Proximity", "query")]["mean_time_last"]
        )

    def test_fig11_csr_monotone_in_cache_size(self):
        result = registry.run_experiment("fig11", SMOKE_SCALE)
        csr = result.column("csr")
        assert all(b >= a - 0.02 for a, b in zip(csr, csr[1:]))

    def test_fig14_chunked_fewer_pages(self):
        setup = build_bitmap_setup(
            distinct_values=60, density=0.4, tuples_per_cell=2,
            page_size=1024,
        )
        result = registry.EXPERIMENTS["fig14"][2](
            setup=setup, queries_per_width=3
        )
        for row in result.rows:
            assert row["pages_chunked"] < row["pages_random"]

    def test_feller_model_tracks_measurement(self):
        from repro.experiments.feller import run as run_feller

        setup = build_bitmap_setup(
            distinct_values=60, density=0.4, tuples_per_cell=2,
            page_size=1024,
        )
        result = run_feller(setup=setup, queries_per_width=3)
        for row in result.rows:
            assert row["model_random"] == pytest.approx(
                row["measured_random"], rel=0.35, abs=3
            )
