"""Tests for repro.experiments.reporting."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.reporting import (
    ExperimentResult,
    format_markdown,
    format_table,
)


@pytest.fixture()
def result():
    r = ExperimentResult(
        experiment_id="figX",
        title="Some Figure",
        columns=["scheme", "csr", "time"],
        expectation="a beats b",
        notes="tiny scale",
    )
    r.add(scheme="chunk", csr=0.75, time=1234.5)
    r.add(scheme="query", csr=0.0312, time=None)
    return r


class TestExperimentResult:
    def test_add_and_column(self, result):
        assert result.column("scheme") == ["chunk", "query"]
        assert result.column("time") == [1234.5, None]

    def test_unknown_column_rejected(self, result):
        with pytest.raises(ExperimentError):
            result.column("nope")

    def test_render_plain(self, result):
        text = result.render()
        assert "[figX] Some Figure" in text
        assert "expected shape: a beats b" in text
        assert "notes: tiny scale" in text
        assert "chunk" in text and "query" in text

    def test_render_markdown(self, result):
        text = result.render(markdown=True)
        assert "| scheme | csr | time |" in text


class TestFormatting:
    def test_plain_alignment(self):
        table = format_table(["a", "bb"], [{"a": 1, "bb": 22}])
        lines = table.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table

    def test_float_formatting(self):
        table = format_table(
            ["v"],
            [{"v": 0.12345678}, {"v": 12.3456}, {"v": 1234567.0}, {"v": 0.0}],
        )
        assert "0.1235" in table
        assert "12.35" in table
        assert "1,234,567" in table

    def test_missing_key_blank(self):
        table = format_table(["a", "b"], [{"a": 1}])
        assert table.splitlines()[-1].strip().startswith("1")

    def test_markdown_structure(self):
        text = format_markdown(["a"], [{"a": "x"}])
        lines = text.splitlines()
        assert lines[0] == "| a |"
        assert lines[1] == "|---|"
        assert lines[2] == "| x |"
