"""The runtime lock-order witness: recording, nesting, idle cost."""

from __future__ import annotations

import threading

from repro import lockorder


def test_idle_witness_records_nothing():
    # No capture() active: witness() must be a plain pass-through and
    # leave no thread-local residue behind.
    with lockorder.witness("shard"):
        with lockorder.witness("accounting"):
            pass
    with lockorder.capture() as log:
        pass
    assert log.edges() == frozenset()


def test_nested_levels_record_ordered_pairs():
    with lockorder.capture() as log:
        with lockorder.witness("shard"):
            with lockorder.witness("accounting"):
                pass
    assert log.edges() == {("shard", "accounting")}
    assert log.edge_lines() == ("shard -> accounting",)


def test_self_nesting_records_self_edge():
    with lockorder.capture() as log:
        with lockorder.witness("engine"):
            with lockorder.witness("engine"):
                pass
    assert log.edges() == {("engine", "engine")}


def test_triple_nesting_records_all_outer_pairs():
    with lockorder.capture() as log:
        with lockorder.witness("a"):
            with lockorder.witness("b"):
                with lockorder.witness("c"):
                    pass
    assert log.edges() == {("a", "b"), ("a", "c"), ("b", "c")}


def test_sequential_sections_are_not_an_edge():
    with lockorder.capture() as log:
        with lockorder.witness("shard"):
            pass
        with lockorder.witness("accounting"):
            pass
    assert log.edges() == frozenset()


def test_duplicate_pairs_collapse():
    with lockorder.capture() as log:
        for _ in range(5):
            with lockorder.witness("shard"):
                with lockorder.witness("accounting"):
                    pass
    assert log.edge_lines() == ("shard -> accounting",)


def test_stacks_are_per_thread():
    # One thread holding "shard" must not make another thread's
    # "accounting" acquisition look nested.
    entered = threading.Event()
    release = threading.Event()
    with lockorder.capture() as log:
        def outer() -> None:
            with lockorder.witness("shard"):
                entered.set()
                release.wait(timeout=10.0)

        worker = threading.Thread(target=outer)
        worker.start()
        assert entered.wait(timeout=10.0)
        with lockorder.witness("accounting"):
            pass
        release.set()
        worker.join(timeout=10.0)
    assert log.edges() == frozenset()


def test_capture_scope_ends_recording():
    with lockorder.capture() as log:
        pass
    with lockorder.witness("shard"):
        with lockorder.witness("accounting"):
            pass
    assert log.edges() == frozenset()
