"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_help(self, capsys):
        assert main([]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "tuples" in out

    def test_run_one(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "matches the paper exactly" in out

    def test_run_smoke_scale(self, capsys):
        assert main(["run", "table2", "--smoke"]) == 0
        assert "Locality Parameters" in capsys.readouterr().out

    def test_run_unknown_rejected(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
