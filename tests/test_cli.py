"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


class TestCLI:
    def test_help(self, capsys):
        assert main([]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "table1" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "tuples" in out

    def test_run_one(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "matches the paper exactly" in out

    def test_run_smoke_scale(self, capsys):
        assert main(["run", "table2", "--smoke"]) == 0
        assert "Locality Parameters" in capsys.readouterr().out

    def test_run_unknown_rejected(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2


class TestSoakCommand:
    def test_soak_smoke(self, capsys):
        assert (
            main(
                [
                    "soak", "--smoke", "--users", "4",
                    "--per-user", "8", "--shards", "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "job: soak" in out
        assert "queries: 32" in out

    def test_chaos_soak_writes_json_report(self, capsys, tmp_path):
        report_path = tmp_path / "chaos.json"
        assert (
            main(
                [
                    "soak", "--smoke", "--chaos", "--rate", "mid",
                    "--seed", "7", "--users", "4", "--per-user", "8",
                    "--shards", "2", "--report", str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "job: chaos-soak" in out
        summary = json.loads(report_path.read_text(encoding="utf-8"))
        assert summary["job"] == "chaos-soak"
        assert summary["seed"] == 7
        assert summary["wrong_answers"] == 0
        assert summary["queries"] + summary["failures"] == 32
        assert (
            summary["pages_read"] + summary["failed_pages"]
            == summary["disk_read_delta"]
        )

    def test_soak_unknown_argument_rejected(self, capsys):
        assert main(["soak", "--bogus"]) == 2
        assert "unknown soak arguments" in capsys.readouterr().err

    def test_soak_flag_missing_value_rejected(self):
        with pytest.raises(SystemExit, match="--seed needs a value"):
            main(["soak", "--chaos", "--seed"])
