"""Tests for pre-aggregation dimension filters (non-group-by selections).

Section 5.2.1 condition 3: selections on non-group-by attributes are
folded in before aggregation and must match exactly for cache reuse.
"""

import pytest

from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.exceptions import QueryError
from repro.query.model import StarQuery
from tests.conftest import brute_force_aggregate, canon_rows


def filtered_brute_force(schema, records, query):
    filters = query.effective_dim_filters(schema)
    mask = [True] * len(records)
    kept = records
    import numpy as np

    keep = np.ones(len(records), dtype=bool)
    for dim, interval in zip(schema.dimensions, filters):
        if interval is None:
            continue
        column = records[dim.name]
        keep &= (column >= interval[0]) & (column < interval[1])
    kept = records[keep]
    return brute_force_aggregate(
        schema, kept, query.groupby, list(query.aggregates),
        selections=query.selections,
    )


class TestStarQueryFilters:
    def test_filters_normalized_and_tagged(self, small_schema):
        q = StarQuery.build(
            small_schema, (1, 0), dim_filters={"D1": (2, 6)}
        )
        assert q.dim_filters == (None, (2, 6))
        assert any("D1.leaf" in tag for tag in q.fixed_predicates)

    def test_full_domain_filter_dropped(self, small_schema):
        q = StarQuery.build(
            small_schema, (1, 0), dim_filters={"D1": (0, 8)}
        )
        assert q.dim_filters == (None, None)
        assert q.fixed_predicates == frozenset()

    def test_filters_affect_compatibility(self, small_schema):
        a = StarQuery.build(small_schema, (1, 0), dim_filters={"D1": (2, 6)})
        b = StarQuery.build(small_schema, (1, 0))
        assert a.cache_compatible_key() != b.cache_compatible_key()

    def test_leaf_selection_intersects(self, small_schema):
        q = StarQuery.build(
            small_schema, (1, 1),
            selections={"D1": (0, 2)},   # level-1 members 0..1
            dim_filters={"D1": (1, 5)},  # leaf members 1..4
        )
        leaf = q.leaf_selection(small_schema)
        d1 = small_schema.dimensions[1]
        mapped = d1.map_range(1, (0, 2), 2)
        assert leaf[1] == (max(mapped[0], 1), min(mapped[1], 5))

    def test_disjoint_selection_and_filter_raise(self, small_schema):
        q = StarQuery.build(
            small_schema, (1, 1),
            selections={"D1": (0, 1)},
            dim_filters={"D1": (6, 8)},
        )
        with pytest.raises(QueryError):
            q.leaf_selection(small_schema)

    def test_from_values_filters(self, small_schema):
        q = StarQuery.from_values(
            small_schema,
            {"D0": 1},
            value_filters={"D1": (1, "D1/L1/1", "D1/L1/2")},
        )
        d1 = small_schema.dimensions[1]
        expected = d1.map_range(1, (1, 3), 2)
        assert q.dim_filters[1] == expected


class TestFilteredExecution:
    @pytest.mark.parametrize("path", ["scan", "bitmap", "chunk"])
    def test_engine_paths_agree_with_brute_force(
        self, small_schema, fresh_small_engine, small_records, path
    ):
        query = StarQuery.build(
            small_schema, (1, 0),
            selections={"D0": (1, 4)},
            dim_filters={"D1": (2, 6)},
        )
        rows, _ = fresh_small_engine.answer(query, path)
        assert canon_rows(rows) == filtered_brute_force(
            small_schema, small_records, query
        )

    def test_filter_on_grouped_dim_finer_than_group(
        self, small_schema, fresh_small_engine, small_records
    ):
        """A leaf filter can further restrict a grouped dimension."""
        query = StarQuery.build(
            small_schema, (1, 1),
            dim_filters={"D0": (0, 5)},
        )
        rows, _ = fresh_small_engine.answer(query, "chunk")
        assert canon_rows(rows) == filtered_brute_force(
            small_schema, small_records, query
        )


class TestFilteredCaching:
    def test_manager_answers_and_keys_by_filter(
        self, small_schema, fresh_small_engine, small_records
    ):
        manager = ChunkCacheManager(
            small_schema,
            fresh_small_engine.space,
            fresh_small_engine,
            ChunkCache(2_000_000),
        )
        filtered = StarQuery.build(
            small_schema, (1, 1), dim_filters={"D1": (0, 4)}
        )
        unfiltered = StarQuery.build(small_schema, (1, 1))

        a1 = manager.answer(filtered)
        assert canon_rows(a1.rows) == filtered_brute_force(
            small_schema, small_records, filtered
        )
        # The unfiltered query must NOT reuse filtered chunks.
        a2 = manager.answer(unfiltered)
        assert a2.record.chunks_hit == 0
        # Re-asking the filtered query is a full hit.
        a3 = manager.answer(filtered)
        assert a3.record.chunks_hit == a3.record.chunks_total
        assert canon_rows(a3.rows) == canon_rows(a1.rows)
