"""Tests for repro.query.model — StarQuery construction and derivations."""

import pytest

from repro.exceptions import QueryError
from repro.query.model import StarQuery


class TestBuild:
    def test_defaults(self, small_schema):
        q = StarQuery.build(small_schema, (1, 0))
        assert q.groupby == (1, 0)
        assert q.selections == (None, None)
        assert q.aggregates == (("v", "sum"),)
        assert q.fixed_predicates == frozenset()

    def test_selection_mapping_by_name(self, small_schema):
        q = StarQuery.build(small_schema, (2, 1), {"D0": (2, 5)})
        assert q.selections == ((2, 5), None)

    def test_selection_sequence(self, small_schema):
        q = StarQuery.build(small_schema, (2, 1), [(0, 4), (1, 3)])
        assert q.selections == ((0, 4), (1, 3))

    def test_full_domain_normalizes_to_none(self, small_schema):
        q = StarQuery.build(small_schema, (2, 1), {"D0": (0, 10)})
        assert q.selections == (None, None)

    def test_selection_on_all_dim_rejected(self, small_schema):
        with pytest.raises(QueryError):
            StarQuery.build(small_schema, (0, 1), {"D0": (0, 2)})

    def test_wrong_arity_rejected(self, small_schema):
        with pytest.raises(QueryError):
            StarQuery.build(small_schema, (1, 1), [(0, 1)])

    def test_unknown_measure_rejected(self, small_schema):
        with pytest.raises(QueryError):
            StarQuery.build(small_schema, (1, 1), aggregates=[("zz", "sum")])

    def test_unknown_aggregate_rejected(self, small_schema):
        with pytest.raises(QueryError):
            StarQuery.build(small_schema, (1, 1), aggregates=[("v", "median")])

    def test_empty_aggregates_rejected(self, small_schema):
        with pytest.raises(QueryError):
            StarQuery.build(small_schema, (1, 1), aggregates=[])


class TestFromValues:
    def test_inclusive_value_range(self, small_schema):
        q = StarQuery.from_values(
            small_schema,
            {"D0": 2},
            {"D0": ("D0/L2/3", "D0/L2/6")},
        )
        assert q.groupby == (2, 0)
        assert q.selections == ((3, 7), None)

    def test_selection_on_ungrouped_rejected(self, small_schema):
        with pytest.raises(QueryError):
            StarQuery.from_values(
                small_schema, {"D0": 1}, {"D1": ("a", "b")}
            )

    def test_reversed_bounds_rejected(self, small_schema):
        with pytest.raises(QueryError):
            StarQuery.from_values(
                small_schema,
                {"D0": 2},
                {"D0": ("D0/L2/6", "D0/L2/3")},
            )


class TestDerived:
    def test_keys(self, small_schema):
        q1 = StarQuery.build(small_schema, (1, 1), {"D0": (0, 2)})
        q2 = StarQuery.build(small_schema, (1, 1), {"D0": (2, 4)})
        assert q1.cache_compatible_key() == q2.cache_compatible_key()
        assert q1.exact_key() != q2.exact_key()

    def test_fixed_predicates_in_keys(self, small_schema):
        q1 = StarQuery.build(small_schema, (1, 1), fixed_predicates=["p=1"])
        q2 = StarQuery.build(small_schema, (1, 1))
        assert q1.cache_compatible_key() != q2.cache_compatible_key()

    def test_result_format(self, small_schema):
        q = StarQuery.build(small_schema, (1, 0))
        fmt = q.result_format(small_schema)
        assert fmt.field_names == ("D0", "sum_v")

    def test_result_cardinality(self, small_schema):
        q = StarQuery.build(small_schema, (1, 1), {"D0": (0, 2)})
        assert q.result_cardinality(small_schema) == 2 * 4

    def test_leaf_selection(self, small_schema):
        q = StarQuery.build(small_schema, (1, 1), {"D0": (0, 2)})
        leaf = q.leaf_selection(small_schema)
        d0 = small_schema.dimensions[0]
        assert leaf[0] == d0.map_range(1, (0, 2), 2)
        assert leaf[1] is None

    def test_str_readable(self, small_schema):
        q = StarQuery.build(small_schema, (1, 0), {"D0": (0, 2)})
        text = str(q)
        assert "ALL" in text and "sum(v)" in text

    def test_hashable_and_frozen(self, small_schema):
        q = StarQuery.build(small_schema, (1, 1))
        assert hash(q) == hash(StarQuery.build(small_schema, (1, 1)))
        with pytest.raises(AttributeError):
            q.groupby = (0, 0)  # type: ignore[misc]
