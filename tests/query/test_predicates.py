"""Tests for repro.query.predicates — interval/selection algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import QueryError
from repro.query.predicates import (
    interval_contains,
    interval_intersect,
    interval_length,
    normalize_interval,
    selection_cardinality,
    selection_contains,
    selection_intersect,
)


class TestNormalize:
    def test_full_domain_becomes_none(self):
        assert normalize_interval((0, 10), 10) is None

    def test_clamped(self):
        assert normalize_interval((-3, 5), 10) == (0, 5)
        assert normalize_interval((7, 99), 10) == (7, 10)

    def test_none_passthrough(self):
        assert normalize_interval(None, 10) is None

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            normalize_interval((5, 5), 10)

    def test_outside_domain_rejected(self):
        with pytest.raises(QueryError):
            normalize_interval((10, 12), 10)


class TestIntervalOps:
    def test_intersect(self):
        assert interval_intersect((0, 5), (3, 8)) == (3, 5)
        assert interval_intersect((0, 3), (3, 8)) == "empty"
        assert interval_intersect(None, (1, 2)) == (1, 2)
        assert interval_intersect((1, 2), None) == (1, 2)
        assert interval_intersect(None, None) is None

    def test_contains(self):
        assert interval_contains((0, 10), (2, 5))
        assert interval_contains((2, 5), (2, 5))
        assert not interval_contains((2, 5), (2, 6))
        assert interval_contains(None, (1, 2))
        assert interval_contains(None, None)
        assert not interval_contains((0, 5), None)

    def test_length(self):
        assert interval_length((2, 7), 100) == 5
        assert interval_length(None, 100) == 100


class TestSelectionOps:
    def test_intersect(self):
        a = ((0, 5), None)
        b = ((3, 9), (1, 2))
        assert selection_intersect(a, b) == ((3, 5), (1, 2))

    def test_intersect_disjoint_is_none(self):
        assert selection_intersect(((0, 2), None), ((5, 7), None)) is None

    def test_contains(self):
        assert selection_contains((None, (0, 9)), ((1, 2), (3, 4)))
        assert not selection_contains(((1, 2), None), ((0, 2), None))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(QueryError):
            selection_intersect((None,), (None, None))
        with pytest.raises(QueryError):
            selection_contains((None,), (None, None))
        with pytest.raises(QueryError):
            selection_cardinality((None,), (3, 4))

    def test_cardinality(self):
        assert selection_cardinality(((0, 3), None), (10, 7)) == 21


intervals = st.one_of(
    st.none(),
    st.tuples(st.integers(0, 50), st.integers(0, 50)).map(
        lambda t: (min(t), max(t) + 1)
    ),
)


@given(a=intervals, b=intervals, c=intervals)
def test_intersect_commutative_and_associative(a, b, c):
    assert interval_intersect(a, b) == interval_intersect(b, a)
    ab = interval_intersect(a, b)
    bc = interval_intersect(b, c)
    left = "empty" if ab == "empty" else interval_intersect(ab, c)
    right = "empty" if bc == "empty" else interval_intersect(a, bc)
    assert left == right


@given(a=intervals, b=intervals)
def test_containment_implies_intersection_is_inner(a, b):
    if interval_contains(a, b):
        assert interval_intersect(a, b) == b


@given(a=intervals)
def test_none_is_identity(a):
    assert interval_intersect(a, None) == a
    assert interval_contains(None, a)
