"""Tests for repro.query.containment."""

import pytest

from repro.query.containment import compatible, queries_overlap, query_contains
from repro.query.model import StarQuery


def q(schema, groupby=(1, 1), selections=None, aggregates=None, fixed=()):
    return StarQuery.build(
        schema, groupby, selections, aggregates, fixed_predicates=fixed
    )


class TestQueryContains:
    def test_identical(self, small_schema):
        a = q(small_schema, selections={"D0": (0, 3)})
        assert query_contains(a, a)

    def test_proper_containment(self, small_schema):
        outer = q(small_schema, selections={"D0": (0, 4)})
        inner = q(small_schema, selections={"D0": (1, 3), "D1": (0, 2)})
        assert query_contains(outer, inner)
        assert not query_contains(inner, outer)

    def test_unrestricted_outer_contains_all(self, small_schema):
        outer = q(small_schema)
        inner = q(small_schema, selections={"D0": (0, 1)})
        assert query_contains(outer, inner)

    def test_different_groupby_never_contains(self, small_schema):
        """Condition 1: reuse requires the same level of aggregation."""
        outer = q(small_schema, groupby=(2, 2))
        inner = q(small_schema, groupby=(1, 1))
        assert not query_contains(outer, inner)

    def test_aggregate_subset_required(self, small_schema):
        """Condition 2: the project list must be a subset."""
        outer = q(small_schema, aggregates=[("v", "sum"), ("v", "count")])
        inner = q(small_schema, aggregates=[("v", "sum")])
        assert query_contains(outer, inner)
        assert not query_contains(inner, outer)

    def test_fixed_predicates_must_match(self, small_schema):
        """Condition 3: non-group-by selections must match exactly."""
        outer = q(small_schema, fixed=("price>5",))
        inner = q(small_schema)
        assert not query_contains(outer, inner)
        assert query_contains(outer, q(small_schema, fixed=("price>5",)))

    def test_overlap_not_containment(self, small_schema):
        a = q(small_schema, selections={"D0": (0, 3)})
        b = q(small_schema, selections={"D0": (2, 5)})
        assert not query_contains(a, b)
        assert queries_overlap(a, b)


class TestOverlap:
    def test_disjoint(self, small_schema):
        a = q(small_schema, selections={"D0": (0, 2)})
        b = q(small_schema, selections={"D0": (3, 5)})
        assert not queries_overlap(a, b)

    def test_incompatible_never_overlap(self, small_schema):
        a = q(small_schema, groupby=(1, 0))
        b = q(small_schema, groupby=(1, 1))
        assert not queries_overlap(a, b)

    def test_compatible(self, small_schema):
        assert compatible(q(small_schema), q(small_schema))
        assert not compatible(
            q(small_schema, fixed=("x",)), q(small_schema)
        )
