"""Tests for materialized (precomputed) aggregate tables at the backend.

Section 2.4 of the paper: "Our solution can be easily adapted to the
case where we have precomputed aggregate tables at the backend.  These
tables will also be stored in a chunked format."
"""

import numpy as np
import pytest

from repro.backend.aggregate import (
    finalize_partials,
    partials_format_aggregates,
)
from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.exceptions import BackendError
from repro.query.model import StarQuery
from tests.conftest import canon_rows


class TestFinalizePartials:
    def test_all_aggregates_from_partials(
        self, small_schema, small_records, fresh_small_engine
    ):
        from repro.backend.aggregate import aggregate_records

        stored = partials_format_aggregates(small_schema)
        fine = aggregate_records(
            small_schema, small_records, (2, 2), stored,
            fresh_small_engine.mapper,
        )
        requested = [
            ("v", "sum"), ("v", "count"), ("v", "min"),
            ("v", "max"), ("v", "avg"),
        ]
        merged = finalize_partials(
            small_schema, fine, (2, 2), (1, 1), requested,
            fresh_small_engine.mapper,
        )
        direct = aggregate_records(
            small_schema, small_records, (1, 1), requested,
            fresh_small_engine.mapper,
        )
        assert canon_rows(merged) == canon_rows(direct)


class TestMaterialize:
    def test_materialize_and_answer(self, small_schema, fresh_small_engine):
        fresh_small_engine.materialize((2, 1))
        assert (2, 1) in fresh_small_engine.materialized
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 3)})
        rows, report = fresh_small_engine.answer(query, "chunk")
        expected, _ = fresh_small_engine.answer(query, "scan")
        assert canon_rows(rows) == canon_rows(expected)

    def test_materialized_source_cuts_io(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(
            small_schema, space, small_records, page_size=1024,
            buffer_pool_pages=8,
        )
        query = StarQuery.build(small_schema, (1, 1))
        engine.buffer_pool.flush()
        _, before = engine.answer(query, "chunk")
        engine.materialize((1, 1))
        engine.buffer_pool.flush()
        _, after = engine.answer(query, "chunk")
        assert after.pages_read < before.pages_read
        assert after.tuples_scanned < before.tuples_scanned

    def test_estimates_follow_source(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(
            small_schema, space, small_records, page_size=1024
        )
        grid = space.grid((1, 1))
        numbers = list(range(grid.num_chunks))
        pages_before, tuples_before = engine.estimate_chunk_work(
            (1, 1), numbers
        )
        engine.materialize((1, 1))
        pages_after, tuples_after = engine.estimate_chunk_work(
            (1, 1), numbers
        )
        assert tuples_after < tuples_before
        assert pages_after <= pages_before

    def test_avg_from_materialized(self, small_schema, fresh_small_engine):
        fresh_small_engine.materialize((2, 1))
        query = StarQuery.build(
            small_schema, (1, 0), aggregates=[("v", "avg")]
        )
        rows, _ = fresh_small_engine.answer(query, "chunk")
        expected, _ = fresh_small_engine.answer(query, "scan")
        assert canon_rows(rows) == canon_rows(expected)

    def test_leaf_filters_force_base(self, small_schema, fresh_small_engine):
        fresh_small_engine.materialize((2, 1))
        query = StarQuery.build(
            small_schema, (1, 1), dim_filters={"D1": (2, 6)}
        )
        rows, _ = fresh_small_engine.answer(query, "chunk")
        expected, _ = fresh_small_engine.answer(query, "scan")
        assert canon_rows(rows) == canon_rows(expected)

    def test_incompatible_groupby_not_used(self, small_schema, fresh_small_engine):
        fresh_small_engine.materialize((1, 2))
        # (2, 1) is not a rollup of (1, 2): base must be used, and stay
        # correct.
        query = StarQuery.build(small_schema, (2, 1))
        rows, _ = fresh_small_engine.answer(query, "chunk")
        expected, _ = fresh_small_engine.answer(query, "scan")
        assert canon_rows(rows) == canon_rows(expected)
        assert fresh_small_engine._choose_source((2, 1), None) is None

    def test_picks_cheapest_source(self, small_schema, fresh_small_engine):
        fresh_small_engine.materialize((2, 1))
        fresh_small_engine.materialize((1, 1))
        chosen = fresh_small_engine._choose_source((1, 0), None)
        assert chosen is not None
        assert chosen[0] == (1, 1)  # fewer rows than (2, 1)

    def test_errors(self, small_schema, fresh_small_engine):
        with pytest.raises(BackendError):
            fresh_small_engine.materialize(small_schema.base_groupby)
        fresh_small_engine.materialize((1, 1))
        with pytest.raises(BackendError):
            fresh_small_engine.materialize((1, 1))

    def test_random_organization_rejected(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(
            small_schema, space, small_records, organization="random"
        )
        with pytest.raises(BackendError):
            engine.materialize((1, 1))


class TestManagerWithMaterialized:
    def test_cache_answers_stay_correct(self, small_schema, fresh_small_engine):
        fresh_small_engine.materialize((2, 1))
        manager = ChunkCacheManager(
            small_schema,
            fresh_small_engine.space,
            fresh_small_engine,
            ChunkCache(2_000_000),
        )
        for selections in (None, {"D0": (0, 3)}, {"D1": (1, 3)}):
            query = StarQuery.build(small_schema, (1, 1), selections)
            answer = manager.answer(query)
            expected, _ = fresh_small_engine.answer(query, "scan")
            assert canon_rows(answer.rows) == canon_rows(expected)
