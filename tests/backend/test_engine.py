"""Tests for repro.backend.engine — access paths, chunk interface, costs."""

import numpy as np
import pytest

from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.exceptions import BackendError
from repro.query.model import StarQuery
from repro.schema.builder import build_star_schema
from repro.workload.data import generate_fact_table
from tests.conftest import brute_force_aggregate, canon_rows


class TestConstruction:
    def test_build_resets_counters(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(
            small_schema, space, small_records, page_size=1024
        )
        assert engine.disk.stats.reads == 0
        assert engine.num_records == len(small_records)
        assert engine.num_data_pages > 0
        assert space.base_tuples == len(small_records)

    def test_unknown_organization_rejected(self, small_schema):
        space = ChunkSpace(small_schema, 0.25)
        with pytest.raises(BackendError):
            BackendEngine(small_schema, space, organization="columnar")

    def test_double_load_rejected(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(small_schema, space, small_records)
        with pytest.raises(BackendError):
            engine.load(small_records)

    def test_unloaded_access_rejected(self, small_schema):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine(small_schema, space)
        with pytest.raises(BackendError):
            engine.answer(StarQuery.build(small_schema, (1, 1)))

    def test_wrong_dtype_rejected(self, small_schema):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine(small_schema, space)
        with pytest.raises(BackendError):
            engine.load(np.zeros(2, dtype=[("x", "i8")]))

    def test_random_organization_has_no_chunk_interface(
        self, small_schema, small_records
    ):
        space = ChunkSpace(small_schema, 0.25)
        engine = BackendEngine.build(
            small_schema, space, small_records, organization="random"
        )
        with pytest.raises(BackendError):
            engine.compute_chunks((1, 1), [0], [("v", "sum")])
        with pytest.raises(BackendError):
            engine.estimate_chunk_work((1, 1), [0])


class TestAccessPathsAgree:
    @pytest.mark.parametrize(
        "groupby,selections",
        [
            ((1, 1), {"D0": (1, 4)}),
            ((2, 1), {"D0": (2, 8), "D1": (0, 3)}),
            ((1, 0), {"D0": (0, 3)}),
            ((2, 2), None),
            ((0, 1), None),
        ],
    )
    def test_three_paths_same_answer(
        self, small_schema, fresh_small_engine, groupby, selections
    ):
        query = StarQuery.build(small_schema, groupby, selections)
        scan_rows, _ = fresh_small_engine.answer(query, "scan")
        bitmap_rows, _ = fresh_small_engine.answer(query, "bitmap")
        chunk_rows, _ = fresh_small_engine.answer(query, "chunk")
        assert canon_rows(scan_rows) == canon_rows(bitmap_rows)
        assert canon_rows(scan_rows) == canon_rows(chunk_rows)

    def test_matches_brute_force(self, small_schema, fresh_small_engine,
                                 small_records):
        query = StarQuery.build(small_schema, (1, 2), {"D1": (2, 6)})
        rows, _ = fresh_small_engine.answer(query, "chunk")
        assert canon_rows(rows) == brute_force_aggregate(
            small_schema,
            small_records,
            (1, 2),
            list(query.aggregates),
            selections=query.selections,
        )

    def test_auto_path_selection(self, small_schema, fresh_small_engine):
        with_selection = StarQuery.build(small_schema, (1, 1), {"D0": (0, 2)})
        _, report = fresh_small_engine.answer(with_selection)
        assert report.access_path == "bitmap"
        no_selection = StarQuery.build(small_schema, (1, 1))
        _, report = fresh_small_engine.answer(no_selection)
        assert report.access_path == "scan"

    def test_unknown_path_rejected(self, small_schema, fresh_small_engine):
        query = StarQuery.build(small_schema, (1, 1))
        with pytest.raises(BackendError):
            fresh_small_engine.answer(query, "quantum")


class TestComputeChunks:
    def test_chunks_cover_grid(self, small_schema, fresh_small_engine):
        space = fresh_small_engine.space
        groupby = (1, 1)
        grid = space.grid(groupby)
        numbers = list(range(grid.num_chunks))
        chunks, report = fresh_small_engine.compute_chunks(
            groupby, numbers, [("v", "sum"), ("v", "count")]
        )
        assert set(chunks) == set(numbers)
        total = int(sum(c["count_v"].sum() for c in chunks.values()))
        assert total == fresh_small_engine.num_records
        assert report.chunks_computed == len(numbers)
        assert report.pages_read > 0

    def test_rows_stay_inside_chunk(self, small_schema, fresh_small_engine):
        space = fresh_small_engine.space
        groupby = (2, 1)
        grid = space.grid(groupby)
        chunks, _ = fresh_small_engine.compute_chunks(
            groupby, [0, 3], [("v", "sum")]
        )
        for number, rows in chunks.items():
            ranges = grid.cell_ranges(number)
            for rng, name in zip(ranges, ("D0", "D1")):
                if rng is None or not len(rows):
                    continue
                assert np.all((rows[name] >= rng.lo) & (rows[name] < rng.hi))

    def test_shared_base_chunks_read_once(self, small_schema, fresh_small_engine):
        """Two sibling chunks sharing base chunks cost less than twice one."""
        groupby = (1, 0)
        fresh_small_engine.buffer_pool.flush()
        _, single = fresh_small_engine.compute_chunks(
            groupby, [0], [("v", "sum")]
        )
        fresh_small_engine.buffer_pool.flush()
        _, double = fresh_small_engine.compute_chunks(
            groupby, [0, 1], [("v", "sum")]
        )
        assert double.pages_read < 2 * single.pages_read + 4


class TestEstimates:
    def test_estimate_has_no_io_side_effect(self, fresh_small_engine):
        before = fresh_small_engine.disk.stats.copy()
        fresh_small_engine.estimate_chunk_work((1, 1), [0, 1, 2])
        after = fresh_small_engine.disk.stats
        assert after.reads == before.reads
        assert after.writes == before.writes

    def test_estimate_total_tuples(self, fresh_small_engine):
        grid = fresh_small_engine.space.grid((1, 1))
        _, tuples = fresh_small_engine.estimate_chunk_work(
            (1, 1), list(range(grid.num_chunks))
        )
        assert tuples == fresh_small_engine.num_records

    def test_estimate_pages_positive(self, fresh_small_engine):
        pages = fresh_small_engine.estimate_chunk_pages((1, 1), [0])
        assert pages > 0

    def test_bitmap_estimate_reasonable(self, small_schema, fresh_small_engine):
        query = StarQuery.build(small_schema, (2, 2), {"D0": (0, 3)})
        estimate = fresh_small_engine.estimate_bitmap_pages(query)
        assert 0 < estimate <= (
            fresh_small_engine.num_data_pages
            + sum(b.num_pages for b in fresh_small_engine.bitmaps.values())
        )


class TestExplain:
    def test_bitmap_plan(self, small_schema, fresh_small_engine):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 2)})
        plan = fresh_small_engine.explain(query)
        assert plan["access_path"] == "bitmap"
        assert plan["chunks"]["source"] == "base"
        assert plan["chunks"]["count"] > 0
        assert plan["estimated_bitmap_pages"] > 0

    def test_scan_plan(self, small_schema, fresh_small_engine):
        query = StarQuery.build(small_schema, (1, 1))
        plan = fresh_small_engine.explain(query)
        assert plan["access_path"] == "scan"
        assert plan["scan_pages"] == fresh_small_engine.num_data_pages

    def test_materialized_source_reported(self, small_schema, fresh_small_engine):
        fresh_small_engine.materialize((1, 1))
        query = StarQuery.build(small_schema, (1, 0), {"D0": (0, 2)})
        plan = fresh_small_engine.explain(query, "chunk")
        assert plan["chunks"]["source"] == "materialized(1, 1)"

    def test_explain_does_no_io(self, small_schema, fresh_small_engine):
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 2)})
        before = fresh_small_engine.disk.stats.copy()
        fresh_small_engine.explain(query)
        after = fresh_small_engine.disk.stats
        assert after.reads == before.reads
