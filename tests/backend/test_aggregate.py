"""Tests for repro.backend.aggregate against a brute-force reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend.aggregate import LevelMapper, aggregate_records, reaggregate
from repro.exceptions import BackendError
from repro.schema.builder import build_star_schema
from repro.workload.data import generate_fact_table
from tests.conftest import brute_force_aggregate, canon_rows


@pytest.fixture()
def mapper(small_schema):
    return LevelMapper(small_schema)


class TestLevelMapper:
    def test_identity(self, small_schema, mapper):
        table = mapper.table(0, 2, 2)
        assert np.array_equal(table, np.arange(10))

    def test_one_step(self, small_schema, mapper):
        d0 = small_schema.dimensions[0]
        table = mapper.table(0, 2, 1)
        for leaf in range(10):
            assert table[leaf] == d0.ancestor_ordinal(2, leaf, 1)

    def test_memoized(self, mapper):
        assert mapper.table(0, 2, 1) is mapper.table(0, 2, 1)

    def test_upward_only(self, mapper):
        with pytest.raises(BackendError):
            mapper.table(0, 1, 2)

    def test_multi_step(self):
        schema = build_star_schema([[2, 4, 16]])
        mapper = LevelMapper(schema)
        dim = schema.dimensions[0]
        table = mapper.table(0, 3, 1)
        for leaf in range(16):
            assert table[leaf] == dim.ancestor_ordinal(3, leaf, 1)


class TestAggregateRecords:
    @pytest.mark.parametrize("groupby", [(2, 2), (1, 1), (1, 0), (0, 2), (0, 0)])
    def test_matches_brute_force(self, small_schema, small_records, mapper, groupby):
        aggregates = [("v", "sum"), ("v", "count")]
        rows = aggregate_records(
            small_schema, small_records, groupby, aggregates, mapper
        )
        assert canon_rows(rows) == brute_force_aggregate(
            small_schema, small_records, groupby, aggregates
        )

    @pytest.mark.parametrize("agg", ["min", "max", "avg"])
    def test_other_aggregates(self, small_schema, small_records, mapper, agg):
        rows = aggregate_records(
            small_schema, small_records, (1, 1), [("v", agg)], mapper
        )
        assert canon_rows(rows) == brute_force_aggregate(
            small_schema, small_records, (1, 1), [("v", agg)]
        )

    def test_selection_filter(self, small_schema, small_records, mapper):
        selection = ((1, 3), None)
        rows = aggregate_records(
            small_schema,
            small_records,
            (1, 1),
            [("v", "sum")],
            mapper,
            selection=selection,
        )
        assert canon_rows(rows) == brute_force_aggregate(
            small_schema, small_records, (1, 1), [("v", "sum")],
            selections=selection,
        )
        assert np.all((rows["D0"] >= 1) & (rows["D0"] < 3))

    def test_empty_input(self, small_schema, mapper):
        from repro.storage.record import fact_record_format

        empty = fact_record_format(small_schema).empty()
        rows = aggregate_records(
            small_schema, empty, (1, 1), [("v", "sum")], mapper
        )
        assert len(rows) == 0

    def test_finer_record_groupby_rejected(self, small_schema, small_records, mapper):
        with pytest.raises(BackendError):
            aggregate_records(
                small_schema,
                small_records,
                (2, 2),
                [("v", "sum")],
                mapper,
                record_groupby=(1, 1),
            )

    def test_output_sorted_by_group_key(self, small_schema, small_records, mapper):
        rows = aggregate_records(
            small_schema, small_records, (1, 1), [("v", "sum")], mapper
        )
        keys = rows["D0"].astype(np.int64) * 4 + rows["D1"]
        assert np.all(np.diff(keys) > 0)


class TestReaggregate:
    def test_matches_direct_aggregation(self, small_schema, small_records, mapper):
        aggregates = [("v", "sum"), ("v", "count"), ("v", "min")]
        fine = aggregate_records(
            small_schema, small_records, (2, 1), aggregates, mapper
        )
        merged = reaggregate(
            small_schema, fine, (2, 1), (1, 0), aggregates, mapper
        )
        direct = aggregate_records(
            small_schema, small_records, (1, 0), aggregates, mapper
        )
        assert canon_rows(merged) == canon_rows(direct)

    def test_avg_rejected(self, small_schema, small_records, mapper):
        fine = aggregate_records(
            small_schema, small_records, (2, 2), [("v", "avg")], mapper
        )
        with pytest.raises(BackendError):
            reaggregate(
                small_schema, fine, (2, 2), (1, 1), [("v", "avg")], mapper
            )

    def test_coarser_source_rejected(self, small_schema, small_records, mapper):
        coarse = aggregate_records(
            small_schema, small_records, (1, 1), [("v", "sum")], mapper
        )
        with pytest.raises(BackendError):
            reaggregate(
                small_schema, coarse, (1, 1), (2, 2), [("v", "sum")], mapper
            )

    def test_with_selection(self, small_schema, small_records, mapper):
        aggregates = [("v", "sum")]
        fine = aggregate_records(
            small_schema, small_records, (2, 2), aggregates, mapper
        )
        merged = reaggregate(
            small_schema, fine, (2, 2), (1, 1), aggregates, mapper,
            selection=((0, 2), None),
        )
        direct = aggregate_records(
            small_schema, small_records, (1, 1), aggregates, mapper,
            selection=((0, 2), None),
        )
        assert canon_rows(merged) == canon_rows(direct)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(0, 150),
    seed=st.integers(0, 99),
    level0=st.integers(0, 2),
    level1=st.integers(0, 2),
)
def test_aggregation_matches_brute_force_property(n, seed, level0, level1):
    schema = build_star_schema([[3, 9], [2, 6]], measure_names=("v",))
    records = generate_fact_table(schema, n, seed=seed)
    mapper = LevelMapper(schema)
    aggregates = [("v", "sum"), ("v", "count")]
    rows = aggregate_records(
        schema, records, (level0, level1), aggregates, mapper
    )
    assert canon_rows(rows) == brute_force_aggregate(
        schema, records, (level0, level1), aggregates
    )
