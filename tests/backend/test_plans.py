"""Tests for repro.backend.plans — cost reports."""

from repro.backend.plans import CostReport, measure_cost
from repro.storage.disk import SimulatedDisk


class TestCostReport:
    def test_addition(self):
        a = CostReport(pages_read=2, tuples_scanned=10, access_path="chunk")
        b = CostReport(pages_read=3, result_tuples=4, access_path="scan")
        c = a + b
        assert c.pages_read == 5
        assert c.tuples_scanned == 10
        assert c.result_tuples == 4
        assert c.access_path == "chunk+scan"

    def test_merge_in_place(self):
        a = CostReport(pages_read=1, access_path="chunk")
        a.merge(CostReport(pages_read=2, chunks_computed=3))
        assert a.pages_read == 3
        assert a.chunks_computed == 3
        assert a.access_path == "chunk"

    def test_defaults_zero(self):
        r = CostReport()
        assert r.pages_read == 0
        assert r.pages_written == 0
        assert r.access_path == ""


class TestMeasureCost:
    def test_captures_io_delta(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        disk.write_page(pid, b"x")
        with measure_cost(disk, access_path="scan") as report:
            disk.read_page(pid)
            disk.read_page(pid)
            disk.write_page(pid, b"y")
        assert report.pages_read == 2
        assert report.pages_written == 1
        assert report.access_path == "scan"

    def test_accumulates_into_prefilled_report(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        ctx = measure_cost(disk)
        with ctx as report:
            report.tuples_scanned += 7
            disk.read_page(pid)
        assert report.pages_read == 1
        assert report.tuples_scanned == 7

    def test_nested_blocks_independent(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        with measure_cost(disk) as outer:
            disk.read_page(pid)
            with measure_cost(disk) as inner:
                disk.read_page(pid)
        assert inner.pages_read == 1
        assert outer.pages_read == 2
