"""Tests for repro.backend.sql — the star-join mini-SQL front end."""

import pytest

from repro.backend.sql import parse_query, tokenize
from repro.exceptions import SQLParseError
from repro.schema.builder import build_dimension
from repro.schema.star import Measure, StarSchema
from tests.conftest import canon_rows


@pytest.fixture(scope="module")
def sales_schema():
    """A paper-like sales schema with named levels and members."""
    skeleton = build_dimension(
        "product", [2, 6], level_names=["category", "pname"]
    )
    # Named members: categories and products, hierarchically ordered.
    from repro.schema.dimension import Dimension

    product = Dimension(
        "product",
        skeleton.hierarchy,
        members={
            1: ["clothes", "electronics"],
            2: ["shirt", "pants", "dress", "phone", "laptop", "tablet"],
        },
    )
    date = build_dimension("date", [2, 8], level_names=["quarter", "month"])
    date = Dimension(
        "date",
        date.hierarchy,
        members={
            1: ["Q1", "Q2"],
            2: ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug"],
        },
    )
    return StarSchema(
        [product, date], [Measure("dollar_sales")], name="sales"
    )


class TestTokenizer:
    def test_basic(self):
        tokens = tokenize("SELECT a, SUM(x) FROM t WHERE a >= 'Jan''s'")
        texts = [t.text for t in tokens]
        assert "SELECT" in texts
        assert "Jan's" in texts
        assert ">=" in texts
        assert tokens[-1].kind == "end"

    def test_numbers(self):
        tokens = tokenize("x = 42 AND y <= 3.5")
        kinds = {t.text: t.kind for t in tokens if t.kind != "end"}
        assert kinds["42"] == "number"
        assert kinds["3.5"] == "number"

    def test_garbage_rejected(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT ;")


class TestParsing:
    def test_q1_template(self, sales_schema):
        """The paper's Q1: category restriction + month range."""
        query = parse_query(
            sales_schema,
            """
            SELECT pname, month, SUM(dollar_sales)
            FROM sales, date
            WHERE category = 'clothes' AND month >= 'Jan'
              AND month <= 'Jun' AND sales.did = date.did
            GROUP BY pname, month
            """,
        )
        assert query.groupby == (2, 2)
        # category='clothes' covers products 0..2 (contiguous block).
        assert query.selections[0] == (0, 3)
        assert query.selections[1] == (0, 6)
        assert query.aggregates == (("dollar_sales", "sum"),)

    def test_between(self, sales_schema):
        query = parse_query(
            sales_schema,
            "SELECT month, SUM(dollar_sales) FROM sales "
            "WHERE month BETWEEN 'Feb' AND 'Apr' GROUP BY month",
        )
        assert query.groupby == (0, 2)
        assert query.selections[1] == (1, 4)

    def test_equality_point(self, sales_schema):
        query = parse_query(
            sales_schema,
            "SELECT pname, SUM(dollar_sales) FROM sales "
            "WHERE pname = 'dress' GROUP BY pname",
        )
        assert query.selections[0] == (2, 3)

    def test_strict_comparisons(self, sales_schema):
        query = parse_query(
            sales_schema,
            "SELECT month, SUM(dollar_sales) FROM sales "
            "WHERE month > 'Jan' AND month < 'May' GROUP BY month",
        )
        assert query.selections[1] == (1, 4)

    def test_filter_on_ungrouped_dimension(self, sales_schema):
        """A predicate on a dimension outside the GROUP BY becomes a
        pre-aggregation filter."""
        query = parse_query(
            sales_schema,
            "SELECT month, SUM(dollar_sales) FROM sales "
            "WHERE category = 'electronics' GROUP BY month",
        )
        assert query.groupby == (0, 2)
        assert query.selections == (None, None)
        assert query.dim_filters[0] == (3, 6)  # leaf range of electronics

    def test_finer_level_predicate_becomes_filter(self, sales_schema):
        query = parse_query(
            sales_schema,
            "SELECT category, SUM(dollar_sales) FROM sales "
            "WHERE pname = 'shirt' GROUP BY category",
        )
        assert query.groupby == (1, 0)
        assert query.dim_filters[0] == (0, 1)

    def test_count_star(self, sales_schema):
        query = parse_query(
            sales_schema,
            "SELECT month, COUNT(*) FROM sales GROUP BY month",
        )
        assert query.aggregates == (("dollar_sales", "count"),)

    def test_multiple_aggregates(self, sales_schema):
        query = parse_query(
            sales_schema,
            "SELECT month, SUM(dollar_sales), AVG(dollar_sales) "
            "FROM sales GROUP BY month",
        )
        assert query.aggregates == (
            ("dollar_sales", "sum"),
            ("dollar_sales", "avg"),
        )

    def test_qualified_columns(self, sales_schema):
        query = parse_query(
            sales_schema,
            "SELECT date.month, SUM(dollar_sales) FROM sales "
            "WHERE date.month = 'Mar' GROUP BY date.month",
        )
        assert query.selections[1] == (2, 3)

    def test_fact_table_qualifier_falls_through(self, sales_schema):
        """A qualifier naming the fact table resolves unqualified."""
        query = parse_query(
            sales_schema,
            "SELECT sales.month, SUM(dollar_sales) FROM sales "
            "GROUP BY sales.month",
        )
        assert query.groupby == (0, 2)

    def test_resolver_bug_not_mistaken_for_fact_qualifier(
        self, sales_schema, monkeypatch
    ):
        """Regression (R004): only SchemaError means "not a dimension".

        The old ``except Exception`` also swallowed genuine defects in
        the schema lookup, silently resolving the column as unqualified.
        """
        def boom(name):
            raise AttributeError("schema lookup broke")

        monkeypatch.setattr(sales_schema, "dimension_position", boom)
        with pytest.raises(AttributeError):
            parse_query(
                sales_schema,
                "SELECT date.month, SUM(dollar_sales) FROM sales "
                "GROUP BY date.month",
            )


class TestErrors:
    def test_unknown_column(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT flavour, SUM(dollar_sales) FROM s GROUP BY flavour",
            )

    def test_unknown_member(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT month, SUM(dollar_sales) FROM s "
                "WHERE month = 'Dec' GROUP BY month",
            )

    def test_unknown_measure(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT month, SUM(profit) FROM s GROUP BY month",
            )

    def test_no_aggregate_rejected(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema, "SELECT month FROM s GROUP BY month"
            )

    def test_projection_not_grouped_rejected(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT pname, SUM(dollar_sales) FROM s GROUP BY month",
            )

    def test_two_levels_of_one_dim_rejected(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT category, SUM(dollar_sales) FROM s "
                "GROUP BY category, pname",
            )

    def test_contradictory_predicates_rejected(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT month, SUM(dollar_sales) FROM s "
                "WHERE month <= 'Jan' AND month >= 'Jun' GROUP BY month",
            )

    def test_reversed_between_rejected(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT month, SUM(dollar_sales) FROM s "
                "WHERE month BETWEEN 'Jun' AND 'Jan' GROUP BY month",
            )

    def test_missing_group_by_rejected(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema, "SELECT SUM(dollar_sales) FROM s"
            )

    def test_trailing_garbage_rejected(self, sales_schema):
        with pytest.raises(SQLParseError):
            parse_query(
                sales_schema,
                "SELECT month, SUM(dollar_sales) FROM s GROUP BY month "
                "ORDER BY month",
            )


class TestExecution:
    def test_sql_answers_match_direct_query(self, sales_schema):
        import numpy as np

        from repro.backend.engine import BackendEngine
        from repro.chunks.grid import ChunkSpace
        from repro.workload.data import generate_fact_table

        space = ChunkSpace(sales_schema, 0.34)
        records = generate_fact_table(sales_schema, 800, seed=3)
        engine = BackendEngine.build(
            sales_schema, space, records, page_size=1024
        )
        query = parse_query(
            sales_schema,
            "SELECT pname, SUM(dollar_sales) FROM sales "
            "WHERE category = 'clothes' AND month BETWEEN 'Jan' AND 'Mar' "
            "GROUP BY pname",
        )
        rows, _ = engine.answer(query, "chunk")
        expected, _ = engine.answer(query, "scan")
        assert canon_rows(rows) == canon_rows(expected)
        # Only clothes products appear.
        assert set(rows["product"].tolist()) <= {0, 1, 2}


class TestRenderQuery:
    def test_render_parses_back(self, sales_schema):
        from repro.backend.sql import render_query
        from repro.query.model import StarQuery

        query = StarQuery.build(
            sales_schema,
            (2, 2),
            {"product": (1, 4), "date": (2, 6)},
        )
        sql = render_query(sales_schema, query)
        assert parse_query(sales_schema, sql) == query

    def test_render_with_filters(self, sales_schema):
        from repro.backend.sql import render_query
        from repro.query.model import StarQuery

        query = StarQuery.build(
            sales_schema, (0, 1), dim_filters={"product": (0, 3)}
        )
        sql = render_query(sales_schema, query)
        assert parse_query(sales_schema, sql) == query

    def test_render_all_aggregated_rejected(self, sales_schema):
        from repro.backend.sql import render_query
        from repro.query.model import StarQuery

        query = StarQuery.build(sales_schema, (0, 0))
        with pytest.raises(SQLParseError):
            render_query(sales_schema, query)

    def test_quotes_escaped(self):
        from repro.backend.sql import render_query
        from repro.query.model import StarQuery
        from repro.schema.dimension import Dimension
        from repro.schema.hierarchy import Hierarchy, Level
        from repro.schema.star import Measure, StarSchema

        dim = Dimension(
            "city",
            Hierarchy([Level(1, "cname", 3)]),
            members={1: ["O'Fallon", "St. Lou'is", "plain"]},
        )
        schema = StarSchema([dim], [Measure("m")], name="facts")
        query = StarQuery.build(schema, (1,), {"city": (0, 2)})
        sql = render_query(schema, query)
        assert parse_query(schema, sql) == query


class TestRoundTripProperty:
    def test_random_queries_round_trip(self, sales_schema):
        """Generated queries survive render -> parse unchanged."""
        from hypothesis import given, settings, strategies as st

        from repro.backend.sql import render_query
        from repro.workload.generator import EQPR, QueryGenerator

        generator = QueryGenerator(sales_schema, seed=21)
        checked = 0
        for query in generator.stream(60, EQPR):
            if all(level == 0 for level in query.groupby):
                continue
            sql = render_query(sales_schema, query)
            assert parse_query(sales_schema, sql) == query, sql
            checked += 1
        assert checked > 40
