"""Tests for the update path: delta appends, reorganize, invalidation."""

import numpy as np
import pytest

from repro.backend.engine import BackendEngine
from repro.chunks.grid import ChunkSpace
from repro.core.cache import ChunkCache
from repro.core.manager import ChunkCacheManager
from repro.core.query_cache import QueryCacheManager
from repro.exceptions import BackendError
from repro.query.model import StarQuery
from repro.storage.record import fact_record_format
from repro.workload.data import generate_fact_table
from tests.conftest import canon_rows


@pytest.fixture()
def engine(small_schema, small_records):
    space = ChunkSpace(small_schema, 0.25)
    return BackendEngine.build(
        small_schema, space, small_records, page_size=1024,
        buffer_pool_pages=16,
    )


def new_tuples(schema, n=50, seed=99):
    return generate_fact_table(schema, n, seed=seed)


class TestAppend:
    def test_answers_include_delta_everywhere(self, small_schema, engine):
        extra = new_tuples(small_schema)
        engine.append_records(extra)
        query = StarQuery.build(small_schema, (1, 1), {"D0": (0, 4)})
        scan_rows, _ = engine.answer(query, "scan")
        bitmap_rows, _ = engine.answer(query, "bitmap")
        chunk_rows, _ = engine.answer(query, "chunk")
        assert canon_rows(scan_rows) == canon_rows(bitmap_rows)
        assert canon_rows(scan_rows) == canon_rows(chunk_rows)
        # And the counts reflect the appended tuples.
        count_query = StarQuery.build(
            small_schema, (0, 0), aggregates=[("v", "count")]
        )
        rows, _ = engine.answer(count_query, "chunk")
        assert int(rows["count_v"][0]) == 5000 + len(extra)

    def test_affected_chunks_reported(self, small_schema, engine):
        fmt = fact_record_format(small_schema)
        one = fmt.empty(1)
        one["D0"] = 0
        one["D1"] = 0
        one["v"] = 1.0
        affected = engine.append_records(one)
        assert affected == [0]

    def test_empty_append_noop(self, small_schema, engine):
        fmt = fact_record_format(small_schema)
        assert engine.append_records(fmt.empty(0)) == []

    def test_append_drops_materialized(self, small_schema, engine):
        engine.materialize((1, 1))
        engine.append_records(new_tuples(small_schema))
        assert not engine.materialized

    def test_wrong_dtype_rejected(self, small_schema, engine):
        with pytest.raises(BackendError):
            engine.append_records(np.zeros(1, dtype=[("x", "i8")]))

    def test_random_organization_rejected(self, small_schema, small_records):
        space = ChunkSpace(small_schema, 0.25)
        random_engine = BackendEngine.build(
            small_schema, space, small_records, organization="random"
        )
        with pytest.raises(BackendError):
            random_engine.append_records(new_tuples(small_schema))

    def test_multiple_appends_accumulate(self, small_schema, engine):
        engine.append_records(new_tuples(small_schema, 20, seed=1))
        engine.append_records(new_tuples(small_schema, 30, seed=2))
        count_query = StarQuery.build(
            small_schema, (0, 0), aggregates=[("v", "count")]
        )
        rows, _ = engine.answer(count_query, "scan")
        assert int(rows["count_v"][0]) == 5050


class TestReorganize:
    def test_reorganize_preserves_answers(self, small_schema, engine):
        engine.append_records(new_tuples(small_schema))
        query = StarQuery.build(small_schema, (2, 1), {"D0": (2, 7)})
        before, _ = engine.answer(query, "scan")
        engine.reorganize()
        assert engine.delta_file is None
        after_scan, _ = engine.answer(query, "scan")
        after_chunk, _ = engine.answer(query, "chunk")
        after_bitmap, _ = engine.answer(query, "bitmap")
        assert canon_rows(before) == canon_rows(after_scan)
        assert canon_rows(before) == canon_rows(after_chunk)
        assert canon_rows(before) == canon_rows(after_bitmap)

    def test_reorganize_restores_clustering(self, small_schema, engine):
        engine.append_records(new_tuples(small_schema, 500))
        engine.reorganize()
        from repro.storage.chunkedfile import tuple_chunk_numbers

        stored = engine.chunked_file.read_all()
        numbers = tuple_chunk_numbers(
            engine.space.base_grid, stored, ("D0", "D1")
        )
        assert np.all(np.diff(numbers) >= 0)

    def test_reorganize_without_delta_noop(self, small_schema, engine):
        engine.reorganize()  # must not raise


class TestChunkCacheInvalidation:
    def test_stale_chunks_dropped_and_answers_correct(
        self, small_schema, engine
    ):
        manager = ChunkCacheManager(
            small_schema, engine.space, engine, ChunkCache(2_000_000)
        )
        query = StarQuery.build(small_schema, (1, 1))
        first = manager.answer(query)
        assert manager.answer(query).record.chunks_hit > 0

        affected = engine.append_records(new_tuples(small_schema, 40))
        removed = manager.invalidate_base_chunks(affected)
        assert removed > 0

        fresh = manager.answer(query)
        expected, _ = engine.answer(query, "scan")
        assert canon_rows(fresh.rows) == canon_rows(expected)
        # Without invalidation the old (stale) answer would differ.
        assert canon_rows(fresh.rows) != canon_rows(first.rows)

    def test_unrelated_chunks_survive(self, small_schema, engine):
        manager = ChunkCacheManager(
            small_schema, engine.space, engine, ChunkCache(2_000_000)
        )
        left = StarQuery.build(small_schema, (2, 2), {"D0": (0, 2)})
        manager.answer(left)
        resident_before = len(manager.cache)
        # Append a tuple far away from the cached region (D0 leaf 9).
        fmt = fact_record_format(small_schema)
        one = fmt.empty(1)
        one["D0"] = 9
        one["D1"] = 7
        affected = engine.append_records(one)
        removed = manager.invalidate_base_chunks(affected)
        assert removed < resident_before
        answer = manager.answer(left)
        expected, _ = engine.answer(left, "scan")
        assert canon_rows(answer.rows) == canon_rows(expected)

    def test_empty_invalidation(self, small_schema, engine):
        manager = ChunkCacheManager(
            small_schema, engine.space, engine, ChunkCache(2_000_000)
        )
        assert manager.invalidate_base_chunks([]) == 0


class TestQueryCacheInvalidation:
    def test_stale_results_dropped(self, small_schema, engine):
        manager = QueryCacheManager(small_schema, engine, 2_000_000)
        query = StarQuery.build(small_schema, (1, 1))
        manager.answer(query)
        assert manager.answer(query).record.chunks_hit == 1

        affected = engine.append_records(new_tuples(small_schema, 30))
        removed = manager.invalidate_base_chunks(affected)
        assert removed > 0

        fresh = manager.answer(query)
        assert fresh.record.chunks_hit == 0  # recomputed
        expected, _ = engine.answer(query, "scan")
        assert canon_rows(fresh.rows) == canon_rows(expected)

    def test_disjoint_results_survive(self, small_schema, engine):
        manager = QueryCacheManager(small_schema, engine, 2_000_000)
        left = StarQuery.build(small_schema, (2, 2), {"D0": (0, 2)})
        manager.answer(left)
        fmt = fact_record_format(small_schema)
        one = fmt.empty(1)
        one["D0"] = 9
        one["D1"] = 7
        affected = engine.append_records(one)
        manager.invalidate_base_chunks(affected)
        assert manager.answer(left).record.chunks_hit == 1
