"""Tests for repro.storage.btree — model-based and structural."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import IndexError_
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


def make_tree(page_size=256, value_arity=1, **kwargs):
    return BTree(SimulatedDisk(page_size), value_arity=value_arity, **kwargs)


class TestBulkLoad:
    def test_small(self):
        tree = make_tree()
        tree.bulk_load([(i, (i * 10,)) for i in range(5)])
        assert len(tree) == 5
        assert tree.height == 1
        for i in range(5):
            assert tree.search(i) == (i * 10,)

    def test_multi_level(self):
        tree = make_tree(page_size=128)
        items = [(i, (i,)) for i in range(0, 2000, 2)]
        tree.bulk_load(items)
        assert tree.height >= 2
        assert tree.search(998) == (998,)
        assert tree.search(999) is None
        assert tree.search(-5) is None
        assert tree.search(99999) is None

    def test_empty_load(self):
        tree = make_tree()
        tree.bulk_load([])
        assert len(tree) == 0
        assert tree.search(1) is None
        assert list(tree.items()) == []

    def test_unsorted_rejected(self):
        tree = make_tree()
        with pytest.raises(IndexError_):
            tree.bulk_load([(2, (0,)), (1, (0,))])

    def test_duplicates_rejected(self):
        tree = make_tree()
        with pytest.raises(IndexError_):
            tree.bulk_load([(1, (0,)), (1, (0,))])

    def test_wrong_arity_rejected(self):
        tree = make_tree(value_arity=2)
        with pytest.raises(IndexError_):
            tree.bulk_load([(1, (0,))])

    def test_double_load_rejected(self):
        tree = make_tree()
        tree.bulk_load([(1, (1,))])
        with pytest.raises(IndexError_):
            tree.bulk_load([(2, (2,))])

    def test_fill_factor(self):
        loose = make_tree(page_size=256, fill_factor=0.5)
        loose.bulk_load([(i, (i,)) for i in range(100)])
        tight = make_tree(page_size=256, fill_factor=1.0)
        tight.bulk_load([(i, (i,)) for i in range(100)])
        assert loose.disk.num_pages > tight.disk.num_pages


class TestRangeScan:
    @pytest.fixture()
    def tree(self):
        tree = make_tree(page_size=128)
        tree.bulk_load([(i * 3, (i,)) for i in range(300)])
        return tree

    def test_middle(self, tree):
        got = list(tree.range_scan(10, 31))
        assert [k for k, _ in got] == [12, 15, 18, 21, 24, 27, 30]

    def test_empty_range(self, tree):
        assert list(tree.range_scan(10, 10)) == []
        assert list(tree.range_scan(10, 5)) == []

    def test_beyond_ends(self, tree):
        assert [k for k, _ in tree.range_scan(-100, 4)] == [0, 3]
        assert [k for k, _ in tree.range_scan(895, 10_000)] == [897]

    def test_items_sorted(self, tree):
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(keys)
        assert len(keys) == 300


class TestSearchMany:
    @pytest.fixture()
    def tree(self):
        tree = make_tree(page_size=128, value_arity=2)
        tree.bulk_load([(i * 2, (i, i + 1)) for i in range(500)])
        return tree

    def test_matches_individual_searches(self, tree):
        keys = [0, 2, 3, 100, 998, 999, 1200]
        batch = tree.search_many(keys)
        for key in keys:
            single = tree.search(key)
            if single is None:
                assert key not in batch
            else:
                assert batch[key] == single

    def test_unsorted_rejected(self, tree):
        with pytest.raises(IndexError_):
            tree.search_many([10, 4])

    def test_empty(self, tree):
        assert tree.search_many([]) == {}

    def test_fewer_node_reads_than_naive(self, tree):
        keys = list(range(0, 400, 2))
        tree.disk.reset_stats()
        tree.search_many(keys)
        batch_reads = tree.disk.stats.reads
        tree.disk.reset_stats()
        for key in keys:
            tree.search(key)
        naive_reads = tree.disk.stats.reads
        assert batch_reads < naive_reads


class TestInsert:
    def test_insert_into_empty(self):
        tree = make_tree()
        tree.insert(5, (50,))
        assert tree.search(5) == (50,)
        assert len(tree) == 1

    def test_overwrite(self):
        tree = make_tree()
        tree.insert(5, (50,))
        tree.insert(5, (51,))
        assert tree.search(5) == (51,)
        assert len(tree) == 1

    def test_inserts_with_splits(self):
        tree = make_tree(page_size=128)
        for i in range(500):
            tree.insert(i * 7 % 500, (i,))
        assert len(tree) == 500
        keys = [k for k, _ in tree.items()]
        assert keys == sorted(set(keys))
        assert len(keys) == 500

    def test_insert_after_bulk_load(self):
        tree = make_tree(page_size=128)
        tree.bulk_load([(i, (i,)) for i in range(0, 100, 2)])
        tree.insert(51, (510,))
        assert tree.search(51) == (510,)
        assert tree.search(50) == (50,)
        assert len(tree) == 51

    def test_wrong_arity_rejected(self):
        tree = make_tree(value_arity=2)
        with pytest.raises(IndexError_):
            tree.insert(1, (1,))


class TestConstruction:
    def test_tiny_page_rejected(self):
        with pytest.raises(IndexError_):
            BTree(SimulatedDisk(page_size=64), value_arity=200)

    def test_bad_arity_rejected(self):
        with pytest.raises(IndexError_):
            make_tree(value_arity=0)

    def test_bad_fill_factor_rejected(self):
        with pytest.raises(IndexError_):
            make_tree(fill_factor=0.0)

    def test_with_buffer_pool(self):
        disk = SimulatedDisk(page_size=128)
        pool = BufferPool(disk, 8)
        tree = BTree(disk, value_arity=1, buffer_pool=pool)
        tree.bulk_load([(i, (i,)) for i in range(200)])
        disk.reset_stats()
        tree.search(100)
        tree.search(100)
        # Second search hits the pool: fewer physical reads than 2x height.
        assert disk.stats.reads <= tree.height


@settings(max_examples=25, deadline=None)
@given(
    initial=st.dictionaries(
        st.integers(0, 3000), st.integers(0, 100), max_size=300
    ),
    inserts=st.lists(
        st.tuples(st.integers(0, 3000), st.integers(0, 100)), max_size=80
    ),
    probes=st.lists(st.integers(0, 3000), max_size=40),
)
def test_model_based(initial, inserts, probes):
    """BTree behaves exactly like a sorted dict under load+insert+search."""
    tree = make_tree(page_size=128)
    model = dict(initial)
    tree.bulk_load(sorted((k, (v,)) for k, v in initial.items()))
    for key, value in inserts:
        tree.insert(key, (value,))
        model[key] = value
    assert len(tree) == len(model)
    for key in probes:
        expected = (model[key],) if key in model else None
        assert tree.search(key) == expected
    assert [k for k, _ in tree.items()] == sorted(model)
