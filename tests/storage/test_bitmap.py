"""Tests for repro.storage.bitmap."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import IndexError_
from repro.storage.bitmap import BitmapIndex, combine_and
from repro.storage.disk import SimulatedDisk


@pytest.fixture()
def column():
    rng = np.random.default_rng(3)
    return rng.integers(0, 7, 500)


@pytest.fixture()
def index(column):
    return BitmapIndex.build(SimulatedDisk(256), column, cardinality=7)


class TestBuild:
    def test_geometry(self, index):
        assert index.num_records == 500
        assert index.bytes_per_bitmap == 63
        assert index.pages_per_bitmap == 1
        assert index.num_pages == 7

    def test_multi_page_bitmaps(self):
        column = np.zeros(5000, dtype=np.int64)
        index = BitmapIndex.build(SimulatedDisk(256), column, cardinality=2)
        assert index.pages_per_bitmap == 3
        assert index.num_pages == 6

    def test_unbuilt_rejected(self):
        index = BitmapIndex(SimulatedDisk(256), 10, 2)
        with pytest.raises(IndexError_):
            index.read_bitmap(0)
        with pytest.raises(IndexError_):
            _ = index.num_pages

    def test_bad_construction(self):
        with pytest.raises(IndexError_):
            BitmapIndex(SimulatedDisk(256), 0, 1)
        with pytest.raises(IndexError_):
            BitmapIndex(SimulatedDisk(256), 1, 0)


class TestRead:
    def test_bitmap_matches_column(self, index, column):
        for value in range(7):
            mask = index.read_bitmap(value)
            assert np.array_equal(mask, column == value)

    def test_out_of_range_value(self, index):
        with pytest.raises(IndexError_):
            index.read_bitmap(7)
        with pytest.raises(IndexError_):
            index.read_bitmap(-1)

    def test_select_range(self, index, column):
        mask = index.select_range(2, 5)
        assert np.array_equal(mask, (column >= 2) & (column < 5))

    def test_select_values(self, index, column):
        mask = index.select_values([0, 6])
        assert np.array_equal(mask, (column == 0) | (column == 6))

    def test_empty_selection_rejected(self, index):
        with pytest.raises(IndexError_):
            index.select_range(3, 3)
        with pytest.raises(IndexError_):
            index.select_values([])

    def test_positions(self, index, column):
        mask = index.read_bitmap(1)
        assert np.array_equal(
            BitmapIndex.positions(mask), np.flatnonzero(column == 1)
        )

    def test_read_costs_io(self, index):
        index.disk.reset_stats()
        index.select_range(0, 3)
        assert index.disk.stats.reads == 3 * index.pages_per_bitmap

    def test_pages_for_selection(self, index):
        assert index.pages_for_selection(4) == 4 * index.pages_per_bitmap


class TestCombineAnd:
    def test_and(self):
        a = np.array([True, True, False])
        b = np.array([True, False, False])
        assert combine_and([a, b]).tolist() == [True, False, False]

    def test_single(self):
        a = np.array([True, False])
        out = combine_and([a])
        assert out.tolist() == [True, False]
        out[0] = False  # result is a copy
        assert a[0]

    def test_empty_rejected(self):
        with pytest.raises(IndexError_):
            combine_and([])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 400),
    cardinality=st.integers(1, 9),
    seed=st.integers(0, 99),
)
def test_bitmaps_partition_records(n, cardinality, seed):
    """Each record's bit is set in exactly one value bitmap."""
    rng = np.random.default_rng(seed)
    column = rng.integers(0, cardinality, n)
    index = BitmapIndex.build(
        SimulatedDisk(128), column, cardinality=cardinality
    )
    total = np.zeros(n, dtype=np.int64)
    for value in range(cardinality):
        total += index.read_bitmap(value).astype(np.int64)
    assert np.array_equal(total, np.ones(n, dtype=np.int64))
