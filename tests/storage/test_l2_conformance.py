"""Both in-tree L2 backends pass the same conformance battery.

The battery itself lives in :mod:`tests.storage.l2_contract`; each
class below binds it to one implementation.  A third backend earns its
place the same way: subclass :class:`L2ContractBattery`, implement
``make_backend``, set ``reclaims_dead_space`` to match the layout.
"""

from repro.storage.chunklog import ChunkLog
from repro.storage.sqlitelog import SqliteBackend

from tests.storage.l2_contract import PAGE, L2ContractBattery


class TestChunkLogConformance(L2ContractBattery):
    """The append-only checksummed log (the default backend)."""

    reclaims_dead_space = True

    def make_backend(self, path=None):
        return ChunkLog(path, page_size=PAGE)


class TestSqliteBackendConformance(L2ContractBattery):
    """The stdlib-sqlite3 in-place store."""

    reclaims_dead_space = False

    def make_backend(self, path=None):
        return SqliteBackend(path, page_size=PAGE)


class TestSqliteQuirks:
    """Recovery corners specific to the SQLite layout (the battery
    covers the shared contract; these paths have no log analogue)."""

    def test_valid_header_corrupt_pages_resets(self, tmp_path):
        path = str(tmp_path / "cache.db")
        with open(path, "wb") as handle:
            handle.write(b"SQLite format 3\x00" + b"\xff" * 4096)
        backend = SqliteBackend(path, page_size=PAGE)
        assert backend.recovery.header_reset is True
        assert len(backend) == 0
        backend.put("a", b"x", 1.0)
        assert backend.get("a") == b"x"
        backend.close()

    def test_live_file_backed_reopen_preserves_records(self, tmp_path):
        path = str(tmp_path / "cache.db")
        backend = SqliteBackend(path, page_size=PAGE)
        backend.put("a", b"x", 1.0)
        recovery = backend.reopen()  # reconnects without an exit
        assert recovery.live_entries == 1
        assert backend.get("a") == b"x"
        backend.close()
