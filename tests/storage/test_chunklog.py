"""Tests for repro.storage.chunklog — the persistent L2 tier."""

import struct

import pytest

from repro.exceptions import ChunkLogCorruption, ChunkLogError, DiskFault
from repro.storage.chunklog import (
    CHUNKLOG_MAGIC,
    CHUNKLOG_VERSION,
    ChunkLog,
    LogRecovery,
)

PAGE = 256


def make_log(path=None):
    return ChunkLog(path, page_size=PAGE)


class TestChunkLogBasics:
    def test_append_read_roundtrip(self):
        log = make_log()
        pages = log.append("a", b"payload-a", 3.5)
        assert pages >= 1
        assert log.read("a") == b"payload-a"
        assert log.benefit("a") == 3.5
        assert log.pages_for("a") == pages
        assert "a" in log
        assert len(log) == 1

    def test_last_write_wins(self):
        log = make_log()
        log.append("a", b"old", 1.0)
        log.append("a", b"new", 2.0)
        assert log.read("a") == b"new"
        assert log.benefit("a") == 2.0
        assert len(log) == 1

    def test_empty_token_rejected(self):
        log = make_log()
        with pytest.raises(ChunkLogError):
            log.append("", b"x", 1.0)

    def test_missing_token_raises(self):
        log = make_log()
        with pytest.raises(ChunkLogError):
            log.read("ghost")
        with pytest.raises(ChunkLogError):
            log.benefit("ghost")
        with pytest.raises(ChunkLogError):
            log.pages_for("ghost")

    def test_delete_tombstones(self):
        log = make_log()
        log.append("a", b"x", 1.0)
        assert log.delete("a") is True
        assert log.delete("a") is False
        assert "a" not in log
        assert log.stats.tombstones == 1

    def test_clear_drops_everything(self):
        log = make_log()
        log.append("a", b"x", 1.0)
        log.append("b", b"y", 2.0)
        assert log.clear() == 2
        assert len(log) == 0
        assert log.stats.clears == 1

    def test_drop_is_memory_only(self):
        log = make_log()
        log.append("a", b"x", 1.0)
        writes_before = log.disk.stats.writes
        assert log.drop("a") is True
        assert log.drop("a") is False
        assert "a" not in log
        assert log.disk.stats.writes == writes_before

    def test_tokens_and_entries_in_insertion_order(self):
        log = make_log()
        log.append("b", b"1", 1.0)
        log.append("a", b"22", 2.0)
        log.append("b", b"333", 3.0)  # re-insert moves b last
        assert log.tokens() == ("a", "b")
        assert log.entries() == (("a", 2.0, 2), ("b", 3.0, 3))
        assert log.live_bytes == 5

    def test_close_is_idempotent_and_blocks_writes(self):
        log = make_log()
        log.append("a", b"x", 1.0)
        log.close()
        log.close()
        with pytest.raises(ChunkLogError):
            log.append("b", b"y", 1.0)
        with pytest.raises(ChunkLogError):
            log.read("a")
        # Introspection still works after close (job summaries run then).
        assert len(log) == 1
        assert log.live_bytes == 1

    def test_oversized_token_rejected(self):
        log = make_log()
        with pytest.raises(ChunkLogError):
            log.append("t" * 70_000, b"x", 1.0)

    def test_in_memory_log_has_no_recovery(self):
        log = make_log()
        assert log.recovery == LogRecovery()


class TestChunkLogAccounting:
    def test_page_conservation(self):
        log = make_log()
        log.append("a", b"x" * (3 * PAGE), 1.0)
        log.append("b", b"y", 2.0)
        log.read("a")
        log.delete("b")
        log.clear()
        stats = log.stats
        assert log.disk.stats.writes == (
            stats.append_pages + stats.tombstone_pages + stats.clear_pages
        )
        assert log.disk.stats.reads == stats.read_pages + stats.scan_pages

    def test_multi_page_record_charges_ceil(self):
        log = make_log()
        pages = log.append("a", b"x" * (PAGE + 1), 1.0)
        assert pages == log.pages_for("a")
        assert pages >= 2

    def test_peek_is_uncharged(self):
        log = make_log()
        log.append("a", b"payload", 1.0)
        reads_before = log.disk.stats.reads
        assert log.peek("a") == b"payload"
        assert log.disk.stats.reads == reads_before
        assert log.stats.reads == 0

    def test_faulted_append_charges_partial_pages_only(self):
        log = make_log()
        log.append("warm", b"w", 1.0)
        fail_on = {log.disk.num_pages + 1}  # second page of next record

        def hook(page_id):
            if page_id in fail_on:
                raise DiskFault("boom", page_id=page_id, transient=True)
            return 0.0

        log.disk.write_hook = hook
        with pytest.raises(DiskFault):
            log.append("a", b"x" * (3 * PAGE), 2.0)
        log.disk.write_hook = None
        # The aborted append reached the manifest and file not at all...
        assert "a" not in log
        # ...but the one page written before the fault stays charged,
        # and the logical counters reconcile with the disk exactly.
        stats = log.stats
        assert log.disk.stats.writes == (
            stats.append_pages + stats.tombstone_pages + stats.clear_pages
        )
        assert stats.appends == 1  # only the pre-fault record completed

    def test_faulted_read_charges_partial_pages_only(self):
        log = make_log()
        log.append("a", b"x" * (3 * PAGE), 1.0)
        seen = []

        def hook(page_id):
            seen.append(page_id)
            if len(seen) == 2:
                raise DiskFault("boom", page_id=page_id, transient=True)
            return 0.0

        log.disk.read_hook = hook
        with pytest.raises(DiskFault):
            log.read("a")
        log.disk.read_hook = None
        stats = log.stats
        assert stats.reads == 0  # the read never completed
        assert log.disk.stats.reads == stats.read_pages + stats.scan_pages
        assert log.read("a") == b"x" * (3 * PAGE)


class TestTornWrites:
    def test_torn_hook_corrupts_payload_under_valid_framing(self):
        log = make_log()
        log.torn_hook = lambda token: token == "torn"
        log.append("clean", b"ok", 1.0)
        log.append("torn", b"doomed", 2.0)
        assert log.stats.torn_writes == 1
        assert log.read("clean") == b"ok"
        with pytest.raises(ChunkLogCorruption):
            log.read("torn")
        assert log.stats.crc_failures == 1

    def test_torn_record_survives_restart_until_read(self, tmp_path):
        path = str(tmp_path / "log.bin")
        log = make_log(path)
        log.torn_hook = lambda token: True
        log.append("torn", b"doomed", 2.0)
        log.close()
        reopened = make_log(path)
        # Valid framing: the scan keeps it; the CRC catches it at read.
        assert "torn" in reopened
        with pytest.raises(ChunkLogCorruption):
            reopened.read("torn")


class TestRestartRecovery:
    def test_clean_replay(self, tmp_path):
        path = str(tmp_path / "log.bin")
        log = make_log(path)
        log.append("a", b"x" * 10, 1.5)
        log.append("b", b"y" * 20, 2.5)
        log.delete("a")
        log.close()
        reopened = make_log(path)
        assert reopened.recovery.records == 3
        assert reopened.recovery.live_entries == 1
        assert reopened.recovery.truncated_bytes == 0
        assert reopened.tokens() == ("b",)
        assert reopened.read("b") == b"y" * 20
        assert reopened.benefit("b") == 2.5
        # The scan charged one read per record page; the read("b")
        # above added its own pages on top.
        assert reopened.stats.scan_records == 3
        assert reopened.disk.stats.reads == (
            reopened.stats.read_pages + reopened.stats.scan_pages
        )

    def test_clear_survives_restart(self, tmp_path):
        path = str(tmp_path / "log.bin")
        log = make_log(path)
        log.append("a", b"x", 1.0)
        log.clear()
        log.append("b", b"y", 2.0)
        log.close()
        reopened = make_log(path)
        assert reopened.tokens() == ("b",)

    def test_truncated_tail_is_cut(self, tmp_path):
        path = str(tmp_path / "log.bin")
        log = make_log(path)
        log.append("a", b"x" * 10, 1.0)
        log.append("b", b"y" * 10, 2.0)
        log.close()
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[:-4])  # tear the last record's tail
        reopened = make_log(path)
        assert reopened.recovery.truncated_bytes > 0
        assert reopened.recovery.header_reset is False
        assert reopened.tokens() == ("a",)
        assert reopened.read("a") == b"x" * 10
        # The cut is durable: the next open sees a clean log.
        reopened.close()
        again = make_log(path)
        assert again.recovery.truncated_bytes == 0
        assert again.tokens() == ("a",)

    def test_corrupt_header_resets_to_fresh_log(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\x00" * 40)
        log = make_log(path)
        assert log.recovery.header_reset is True
        assert len(log) == 0
        log.append("a", b"x", 1.0)
        log.close()
        assert make_log(path).tokens() == ("a",)

    def test_short_file_resets(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with open(path, "wb") as handle:
            handle.write(b"RC")
        log = make_log(path)
        assert log.recovery.header_reset is True
        assert len(log) == 0

    def test_unframeable_garbage_cuts_tail(self, tmp_path):
        path = str(tmp_path / "log.bin")
        log = make_log(path)
        log.append("a", b"x", 1.0)
        log.close()
        with open(path, "ab") as handle:
            handle.write(b"\xff" * 64)
        reopened = make_log(path)
        assert reopened.recovery.truncated_bytes == 64
        assert reopened.tokens() == ("a",)

    def test_non_utf8_token_bytes_cut_tail(self, tmp_path):
        path = str(tmp_path / "log.bin")
        log = make_log(path)
        log.append("a", b"x", 1.0)
        log.close()
        # A well-framed PUT whose token bytes are not UTF-8: the scan
        # treats it as the start of a corrupt tail.
        bogus = struct.Struct("<BHIdI").pack(1, 2, 0, 1.0, 0) + b"\xff\xfe"
        with open(path, "ab") as handle:
            handle.write(bogus)
        reopened = make_log(path)
        assert reopened.recovery.truncated_bytes == len(bogus)
        assert reopened.tokens() == ("a",)

    def test_newer_version_refused(self, tmp_path):
        path = str(tmp_path / "log.bin")
        header = struct.Struct("<4sHI6x").pack(
            CHUNKLOG_MAGIC, CHUNKLOG_VERSION + 1, PAGE
        )
        with open(path, "wb") as handle:
            handle.write(header)
        with pytest.raises(ChunkLogError, match="not supported"):
            make_log(path)

    def test_page_size_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "log.bin")
        make_log(path).close()
        with pytest.raises(ChunkLogError, match="page_size"):
            ChunkLog(path, page_size=2 * PAGE)


class TestSpaceCounters:
    def test_supersede_and_tombstone_grow_dead_pages(self):
        log = make_log()
        assert (log.live_pages, log.dead_pages) == (0, 0)
        first = log.put("a", b"x" * PAGE, 1.0)
        assert log.live_pages == first
        assert log.dead_pages == 0
        second = log.put("a", b"y" * 4, 2.0)  # supersedes the old record
        assert log.live_pages == second
        assert log.dead_pages == first
        log.delete("a")  # the record and its tombstone are both dead
        assert log.live_pages == 0
        assert log.dead_pages == (
            first + second + log.stats.tombstone_pages
        )
        counters = log.counters()
        assert counters["live_pages"] == log.live_pages
        assert counters["dead_pages"] == log.dead_pages

    def test_compact_resets_dead_space_and_reports_reclaimed(self):
        log = make_log()
        log.put("a", b"x" * PAGE, 1.0)
        log.put("a", b"y" * 4, 2.0)
        dead = log.dead_pages
        assert dead > 0
        assert log.compact() == dead
        assert log.dead_pages == 0
        assert log.counters()["compactions"] == 1
        assert log.counters()["reclaimed_pages"] == dead
        assert log.read("a") == b"y" * 4

    def test_space_gauges_are_recomputed_from_durable_bytes(self, tmp_path):
        path = str(tmp_path / "log.bin")
        log = make_log(path)
        log.put("a", b"x" * PAGE, 1.0)
        log.put("a", b"y" * 4, 2.0)
        gauges = (log.live_pages, log.dead_pages)
        log.close()
        reopened = make_log(path)
        assert (reopened.live_pages, reopened.dead_pages) == gauges


GOLDEN = __file__.rsplit("/", 1)[0] + "/golden/chunklog_v1.bin"


def write_golden_sequence(path):
    """The fixed record sequence pinned in ``golden/chunklog_v1.bin``."""
    log = ChunkLog(path, page_size=PAGE)
    log.append("alpha", b"alpha-payload", 1.5)
    log.append("beta", bytes(range(64)), 2.25)
    log.append("alpha", b"alpha-v2", 3.0)
    log.delete("beta")
    log.append("gamma", b"\x00\xff" * 8, 0.5)
    log.close()


class TestGoldenFormat:
    """The v1 on-disk format is a frozen artifact.

    If either test fails after an intentional format change, bump
    ``CHUNKLOG_VERSION``, regenerate the golden under a *new* file name
    (``chunklog_v2.bin``) and keep this v1 test refusing the old bytes —
    format drift must fail loudly, never reinterpret.
    """

    def test_writer_reproduces_golden_bytes(self, tmp_path):
        path = str(tmp_path / "log.bin")
        write_golden_sequence(path)
        with open(path, "rb") as handle:
            produced = handle.read()
        with open(GOLDEN, "rb") as handle:
            golden = handle.read()
        assert produced == golden

    def test_reader_replays_golden_bytes(self, tmp_path):
        path = str(tmp_path / "log.bin")
        with open(GOLDEN, "rb") as src, open(path, "wb") as dst:
            dst.write(src.read())
        log = make_log(path)
        assert log.recovery.records == 5
        assert log.tokens() == ("alpha", "gamma")
        assert log.read("alpha") == b"alpha-v2"
        assert log.benefit("alpha") == 3.0
        assert log.read("gamma") == b"\x00\xff" * 8

    def test_version_bump_refuses_golden_reinterpretation(self, tmp_path):
        raw = bytearray(open(GOLDEN, "rb").read())
        struct.Struct("<H").pack_into(raw, 4, CHUNKLOG_VERSION + 1)
        path = str(tmp_path / "log.bin")
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(ChunkLogError, match="not supported"):
            make_log(path)
