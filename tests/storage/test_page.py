"""Tests for repro.storage.page codecs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import PageError
from repro.storage.page import PackedPage, SlottedPage
from repro.storage.record import RecordFormat


@pytest.fixture()
def codec():
    fmt = RecordFormat([("k", "i4"), ("v", "f8")])
    return PackedPage(fmt, page_size=256)


class TestPackedPage:
    def test_capacity(self, codec):
        assert codec.capacity == (256 - 4) // 12

    def test_roundtrip(self, codec):
        records = codec.record_format.from_tuples([(1, 2.0), (3, 4.0)])
        payload = codec.encode(records)
        back = codec.decode(payload)
        assert np.array_equal(back, records)
        assert codec.count(payload) == 2

    def test_empty_page(self, codec):
        payload = codec.encode(codec.record_format.empty())
        assert codec.count(payload) == 0
        assert len(codec.decode(payload)) == 0

    def test_overfull_rejected(self, codec):
        records = codec.record_format.empty(codec.capacity + 1)
        with pytest.raises(PageError):
            codec.encode(records)

    def test_corrupt_count_rejected(self, codec):
        with pytest.raises(PageError):
            codec.decode(b"\xff\xff\xff\xff" + b"\x00" * 100)

    def test_truncated_header_rejected(self, codec):
        with pytest.raises(PageError):
            codec.decode(b"\x01")


class TestSlottedPage:
    def test_append_and_read(self):
        codec = SlottedPage(page_size=128)
        buf = codec.empty()
        assert codec.append(buf, b"alpha") == 0
        assert codec.append(buf, b"bb") == 1
        assert codec.read(buf, 0) == b"alpha"
        assert codec.read(buf, 1) == b"bb"
        assert codec.num_records(buf) == 2
        assert codec.records(buf) == [b"alpha", b"bb"]

    def test_variable_lengths(self):
        codec = SlottedPage(page_size=256)
        records = [b"x" * n for n in (0, 1, 7, 30)]
        buf = codec.build(records)
        assert codec.records(buf) == records

    def test_full_page_rejected(self):
        codec = SlottedPage(page_size=64)
        buf = codec.empty()
        with pytest.raises(PageError):
            codec.append(buf, b"z" * 64)

    def test_free_space_decreases(self):
        codec = SlottedPage(page_size=128)
        buf = codec.empty()
        before = codec.free_space(buf)
        codec.append(buf, b"12345")
        assert codec.free_space(buf) == before - 5 - codec.SLOT.size

    def test_bad_slot_rejected(self):
        codec = SlottedPage(page_size=64)
        buf = codec.empty()
        with pytest.raises(PageError):
            codec.read(buf, 0)

    def test_tiny_page_rejected(self):
        with pytest.raises(PageError):
            SlottedPage(page_size=8)

    @given(st.lists(st.binary(max_size=20), max_size=10))
    def test_roundtrip_property(self, records):
        codec = SlottedPage(page_size=512)
        buf = codec.empty()
        kept = []
        for record in records:
            if codec.free_space(buf) >= len(record):
                codec.append(buf, record)
                kept.append(record)
        assert codec.records(buf) == kept
