"""Tests for repro.storage.chunkedfile — the paper's chunked file."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunks.grid import ChunkSpace
from repro.exceptions import FileFormatError
from repro.schema.builder import build_star_schema
from repro.storage.buffer import BufferPool
from repro.storage.chunkedfile import ChunkedFile, tuple_chunk_numbers
from repro.storage.disk import SimulatedDisk
from repro.storage.record import fact_record_format
from repro.workload.data import generate_fact_table


@pytest.fixture()
def schema():
    return build_star_schema([[3, 9], [2, 8]], measure_names=("v",))


@pytest.fixture()
def space(schema):
    return ChunkSpace(schema, 0.3)


@pytest.fixture()
def records(schema):
    return generate_fact_table(schema, 2000, seed=17)


@pytest.fixture()
def loaded(schema, space, records):
    disk = SimulatedDisk(page_size=256)
    pool = BufferPool(disk, 16)
    cfile = ChunkedFile(disk, fact_record_format(schema), space, pool)
    cfile.bulk_load(records)
    return cfile


class TestTupleChunkNumbers:
    def test_matches_scalar_path(self, schema, space, records):
        grid = space.base_grid
        numbers = tuple_chunk_numbers(grid, records, ("D0", "D1"))
        for row, number in zip(records[:200], numbers[:200]):
            coords = tuple(
                chunking.chunk_index_of(dim.leaf_level, int(row[dim.name]))
                for chunking, dim in zip(space.chunkings, schema.dimensions)
            )
            assert grid.chunk_number(coords) == number

    def test_skips_all_dims(self, schema, space, records):
        """Level-0 dimensions contribute nothing to the chunk number."""
        grid = space.grid((1, 0))
        # Rows at group-by (1, 0): D0 holds level-1 ordinals, D1 is ALL.
        rows = records.copy()
        d0 = schema.dimensions[0]
        rows["D0"] = [
            d0.ancestor_ordinal(d0.leaf_level, int(v), 1)
            for v in records["D0"]
        ]
        numbers = tuple_chunk_numbers(grid, rows, ("D0", "D1"))
        assert numbers.max() < grid.num_chunks
        assert numbers.min() >= 0

    def test_wrong_arity_rejected(self, schema, space, records):
        with pytest.raises(FileFormatError):
            tuple_chunk_numbers(space.base_grid, records, ("D0",))

    def test_out_of_range_ordinals_rejected(self, schema, space):
        fmt = fact_record_format(schema)
        bad = fmt.empty(1)
        bad["D0"] = 99
        with pytest.raises(FileFormatError):
            tuple_chunk_numbers(space.base_grid, bad, ("D0", "D1"))


class TestChunkedFile:
    def test_clustering(self, loaded):
        """Stored order is non-decreasing in chunk number."""
        stored = loaded.read_all()
        numbers = tuple_chunk_numbers(
            loaded.grid, stored, loaded.dimension_fields
        )
        assert np.all(np.diff(numbers) >= 0)

    def test_read_chunk_returns_exact_tuples(self, loaded, records, space):
        numbers = tuple_chunk_numbers(
            space.base_grid, records, ("D0", "D1")
        )
        expected = collections.Counter(numbers.tolist())
        for chunk in range(space.base_grid.num_chunks):
            got = loaded.read_chunk(chunk)
            assert len(got) == expected.get(chunk, 0)
            if len(got):
                got_numbers = tuple_chunk_numbers(
                    space.base_grid, got, ("D0", "D1")
                )
                assert np.all(got_numbers == chunk)

    def test_chunk_extent_and_estimate_agree(self, loaded, space):
        for chunk in range(space.base_grid.num_chunks):
            assert loaded.chunk_extent(chunk) == loaded.chunk_extent_estimate(
                chunk
            )

    def test_read_chunks_merges(self, loaded, space):
        all_numbers = list(range(space.base_grid.num_chunks))
        combined = loaded.read_chunks(all_numbers)
        assert len(combined) == loaded.num_records

    def test_read_chunks_empty_input(self, loaded):
        assert len(loaded.read_chunks([])) == 0

    def test_read_chunk_missing_is_empty(self, schema, space):
        fmt = fact_record_format(schema)
        disk = SimulatedDisk(page_size=256)
        cfile = ChunkedFile(disk, fmt, space)
        sparse = fmt.empty(1)
        sparse["D0"] = 0
        sparse["D1"] = 0
        cfile.bulk_load(sparse)
        assert cfile.num_nonempty_chunks == 1
        last = space.base_grid.num_chunks - 1
        assert len(cfile.read_chunk(last)) == 0
        assert cfile.pages_for_chunk(last) == 0

    def test_chunk_io_proportional_to_chunk(self, loaded):
        """Reading one chunk costs ~its pages, not the whole file."""
        loaded.buffer_pool.flush()
        loaded.disk.reset_stats()
        chunk = 0
        loaded.read_chunk(chunk)
        data_pages = loaded.pages_for_chunk(chunk)
        # B-tree height extra pages on top of the data pages.
        assert loaded.disk.stats.reads <= data_pages * 2 + 2 * loaded.chunk_index.height + 2
        assert loaded.disk.stats.reads < loaded.num_pages

    def test_double_load_rejected(self, loaded, records):
        with pytest.raises(FileFormatError):
            loaded.bulk_load(records)

    def test_unloaded_access_rejected(self, schema, space):
        cfile = ChunkedFile(
            SimulatedDisk(256), fact_record_format(schema), space
        )
        with pytest.raises(FileFormatError):
            cfile.read_chunk(0)
        with pytest.raises(FileFormatError):
            list(cfile.scan())

    def test_wrong_dtype_rejected(self, schema, space):
        cfile = ChunkedFile(
            SimulatedDisk(256), fact_record_format(schema), space
        )
        with pytest.raises(FileFormatError):
            cfile.bulk_load(np.zeros(2, dtype=[("x", "i8")]))

    def test_relational_scan_preserves_multiset(self, loaded, records):
        stored = loaded.read_all()
        assert sorted(map(tuple, stored.tolist())) == sorted(
            map(tuple, records.tolist())
        )

    def test_read_positions(self, loaded):
        got = loaded.read_positions(np.array([0, 10, 100]))
        assert len(got) == 3


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(0, 300),
    seed=st.integers(0, 50),
    ratio=st.sampled_from([0.2, 0.4, 1.0]),
)
def test_multiset_preserved_property(n, seed, ratio):
    """Bulk load never loses or duplicates tuples, at any geometry."""
    schema = build_star_schema([[2, 6], [3, 6]], measure_names=("v",))
    space = ChunkSpace(schema, ratio)
    records = generate_fact_table(schema, n, seed=seed)
    cfile = ChunkedFile(
        SimulatedDisk(256), fact_record_format(schema), space
    )
    cfile.bulk_load(records)
    stored = cfile.read_all()
    assert sorted(map(tuple, stored.tolist())) == sorted(
        map(tuple, records.tolist())
    )
    per_chunk = sum(
        len(cfile.read_chunk(c)) for c in range(space.base_grid.num_chunks)
    )
    assert per_chunk == n
