"""Tests for repro.storage.heapfile and factfile."""

import numpy as np
import pytest

from repro.exceptions import FileFormatError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.factfile import FactFile
from repro.storage.heapfile import HeapFile
from repro.storage.record import RecordFormat


@pytest.fixture()
def fmt():
    return RecordFormat([("k", "i4"), ("v", "f8")])


def make_records(fmt, n):
    records = fmt.empty(n)
    records["k"] = np.arange(n)
    records["v"] = np.arange(n) * 0.5
    return records


class TestHeapFile:
    def test_bulk_load_and_scan(self, fmt):
        disk = SimulatedDisk(page_size=128)
        heap = HeapFile(disk, fmt)
        records = make_records(fmt, 50)
        heap.bulk_load(records)
        assert heap.num_records == 50
        assert heap.records_per_page == (128 - 4) // 12
        scanned = np.concatenate(list(heap.scan()))
        assert np.array_equal(scanned, records)

    def test_read_all_empty(self, fmt):
        heap = HeapFile(SimulatedDisk(128), fmt)
        assert len(heap.read_all()) == 0

    def test_wrong_dtype_rejected(self, fmt):
        heap = HeapFile(SimulatedDisk(128), fmt)
        with pytest.raises(FileFormatError):
            heap.bulk_load(np.zeros(3, dtype=[("z", "i8")]))

    def test_page_of_record(self, fmt):
        disk = SimulatedDisk(page_size=128)
        heap = HeapFile(disk, fmt)
        heap.bulk_load(make_records(fmt, 30))
        rpp = heap.records_per_page
        assert heap.page_of_record(0) == 0
        assert heap.page_of_record(rpp) == 1
        with pytest.raises(FileFormatError):
            heap.page_of_record(30)

    def test_read_positions(self, fmt):
        disk = SimulatedDisk(page_size=128)
        heap = HeapFile(disk, fmt)
        records = make_records(fmt, 100)
        heap.bulk_load(records)
        positions = np.array([0, 5, 50, 99])
        got = heap.read_positions(positions)
        assert got["k"].tolist() == [0, 5, 50, 99]

    def test_read_positions_empty(self, fmt):
        heap = HeapFile(SimulatedDisk(128), fmt)
        heap.bulk_load(make_records(fmt, 10))
        assert len(heap.read_positions(np.array([], dtype=np.int64))) == 0

    def test_read_positions_unsorted_rejected(self, fmt):
        heap = HeapFile(SimulatedDisk(128), fmt)
        heap.bulk_load(make_records(fmt, 10))
        with pytest.raises(FileFormatError):
            heap.read_positions(np.array([5, 2]))

    def test_read_positions_out_of_range(self, fmt):
        heap = HeapFile(SimulatedDisk(128), fmt)
        heap.bulk_load(make_records(fmt, 10))
        with pytest.raises(FileFormatError):
            heap.read_positions(np.array([10]))

    def test_skipped_sequential_io(self, fmt):
        """read_positions reads each distinct page exactly once."""
        disk = SimulatedDisk(page_size=128)
        heap = HeapFile(disk, fmt)
        heap.bulk_load(make_records(fmt, 100))
        rpp = heap.records_per_page
        disk.reset_stats()
        positions = np.array([0, 1, 2, rpp, rpp + 1, 5 * rpp])
        heap.read_positions(positions)
        assert disk.stats.reads == 3
        assert heap.count_pages_for_positions(positions) == 3

    def test_reads_through_buffer_pool(self, fmt):
        disk = SimulatedDisk(page_size=128)
        pool = BufferPool(disk, 4)
        heap = HeapFile(disk, fmt, buffer_pool=pool)
        heap.bulk_load(make_records(fmt, 20))
        disk.reset_stats()
        heap.read_file_page(0)
        heap.read_file_page(0)
        assert disk.stats.reads == 1  # second read was a pool hit

    def test_multiple_bulk_loads_append(self, fmt):
        heap = HeapFile(SimulatedDisk(128), fmt)
        heap.bulk_load(make_records(fmt, 10))
        heap.bulk_load(make_records(fmt, 10))
        assert heap.num_records == 20


class TestFactFile:
    def test_read_range(self, fmt):
        fact = FactFile(SimulatedDisk(128), fmt)
        records = make_records(fmt, 100)
        fact.bulk_load(records)
        got = fact.read_range(37, 20)
        assert got["k"].tolist() == list(range(37, 57))

    def test_read_range_empty(self, fmt):
        fact = FactFile(SimulatedDisk(128), fmt)
        fact.bulk_load(make_records(fmt, 10))
        assert len(fact.read_range(3, 0)) == 0

    def test_read_range_bounds(self, fmt):
        fact = FactFile(SimulatedDisk(128), fmt)
        fact.bulk_load(make_records(fmt, 10))
        with pytest.raises(FileFormatError):
            fact.read_range(5, 6)
        with pytest.raises(FileFormatError):
            fact.read_range(0, -1)

    def test_range_io_proportional_to_span(self, fmt):
        disk = SimulatedDisk(page_size=128)
        fact = FactFile(disk, fmt)
        fact.bulk_load(make_records(fmt, 200))
        rpp = fact.records_per_page
        disk.reset_stats()
        fact.read_range(0, rpp)  # exactly one page
        assert disk.stats.reads == 1
        assert fact.pages_for_range(0, rpp) == 1
        assert fact.pages_for_range(rpp - 1, 2) == 2
        assert fact.pages_for_range(0, 0) == 0

    def test_column(self, fmt):
        fact = FactFile(SimulatedDisk(128), fmt)
        records = make_records(fmt, 25)
        fact.bulk_load(records)
        assert np.array_equal(fact.column("k"), records["k"])
        with pytest.raises(FileFormatError):
            fact.column("nope")
