"""The executable half of the L2 backend contract.

:class:`~repro.storage.l2.L2Backend` states the protocol; this module
makes it enforceable.  :class:`L2ContractBattery` is a conformance
battery every L2 backend must pass — round-trip semantics, canonical
page accounting, torn-write quarantine, restart recovery, fault
retry/degrade behind the tiered cache, and budget eviction order.  It
is deliberately *not* collected directly: a test module subclasses it,
provides :meth:`L2ContractBattery.make_backend`, and pytest runs the
whole battery against that implementation
(``tests/storage/test_l2_conformance.py`` does so for both in-tree
backends; ``docs/TIERING.md`` §Backends explains how to add a third).

Every assertion here is backend-agnostic by design.  Where layouts
legitimately differ — append-only stores accumulate dead space,
in-place stores never do — the battery branches on the single
``reclaims_dead_space`` class flag and still pins the shared
postcondition (after :meth:`~repro.storage.l2.L2Backend.compact`,
``dead_pages == 0`` and every live payload is intact).
"""

from __future__ import annotations

import pytest

from repro.core.cache import ChunkCache
from repro.core.tiered import TieredChunkCache, chunk_token, encode_chunk
from repro.exceptions import ChunkLogCorruption, ChunkLogError, DiskFault
from repro.storage.l2 import L2Backend, check_l2_conservation, record_length

from tests.core.test_tiered import make_chunk

PAGE = 256


def ceil_pages(length: int) -> int:
    return max(1, -(-length // PAGE))


def always_fault(page_id: int) -> float:
    raise DiskFault("injected", page_id=page_id, transient=True)


class L2ContractBattery:
    """Subclass me with ``make_backend`` to conformance-test a backend."""

    #: Whether superseded/tombstoned records leave reclaimable dead
    #: space (append-only layouts).  In-place stores set this False and
    #: must report ``dead_pages == 0`` at all times.
    reclaims_dead_space = True

    def make_backend(self, path: str | None = None) -> L2Backend:
        raise NotImplementedError("conformance subclasses build the backend")

    # ------------------------------------------------------------------
    # Protocol shape

    def test_satisfies_the_structural_protocol(self):
        backend = self.make_backend()
        assert isinstance(backend, L2Backend)

    def test_fresh_backend_is_empty_with_clean_recovery(self):
        backend = self.make_backend()
        assert len(backend) == 0
        assert backend.recovery.live_entries == 0
        assert backend.recovery.header_reset is False
        assert backend.disk.page_size == PAGE

    # ------------------------------------------------------------------
    # Round-trip semantics

    def test_put_get_roundtrip(self):
        backend = self.make_backend()
        pages = backend.put("a", b"payload-a", 3.5)
        assert pages == ceil_pages(record_length("a", b"payload-a"))
        assert backend.get("a") == b"payload-a"
        assert backend.benefit("a") == 3.5
        assert backend.pages_for("a") == pages
        assert "a" in backend
        assert len(backend) == 1

    def test_last_write_wins(self):
        backend = self.make_backend()
        backend.put("a", b"old", 1.0)
        backend.put("a", b"new", 2.0)
        assert backend.get("a") == b"new"
        assert backend.benefit("a") == 2.0
        assert len(backend) == 1

    def test_missing_token_raises(self):
        backend = self.make_backend()
        with pytest.raises(ChunkLogError):
            backend.get("ghost")
        with pytest.raises(ChunkLogError):
            backend.benefit("ghost")
        with pytest.raises(ChunkLogError):
            backend.pages_for("ghost")

    def test_empty_and_oversized_tokens_rejected(self):
        backend = self.make_backend()
        with pytest.raises(ChunkLogError):
            backend.put("", b"x", 1.0)
        with pytest.raises(ChunkLogError):
            backend.put("t" * 70_000, b"x", 1.0)

    def test_delete_is_durable_and_reports_liveness(self):
        backend = self.make_backend()
        backend.put("a", b"x", 1.0)
        assert backend.delete("a") is True
        assert backend.delete("a") is False
        assert "a" not in backend
        assert backend.stats.tombstones == 1

    def test_drop_is_memory_only(self):
        backend = self.make_backend()
        backend.put("a", b"x", 1.0)
        writes_before = backend.disk.stats.writes
        assert backend.drop("a") is True
        assert backend.drop("a") is False
        assert "a" not in backend
        assert backend.disk.stats.writes == writes_before

    def test_clear_drops_everything(self):
        backend = self.make_backend()
        backend.put("a", b"x", 1.0)
        backend.put("b", b"y", 2.0)
        assert backend.clear() == 2
        assert len(backend) == 0
        assert backend.stats.clears == 1

    def test_scan_keys_in_reinsertion_order(self):
        backend = self.make_backend()
        backend.put("b", b"1", 1.0)
        backend.put("a", b"22", 2.0)
        backend.put("b", b"333", 3.0)  # re-insert moves b last
        assert backend.tokens() == ("a", "b")
        assert backend.scan_keys() == (("a", 2.0, 2), ("b", 3.0, 3))
        assert backend.live_bytes == 5

    def test_peek_is_uncharged(self):
        backend = self.make_backend()
        backend.put("a", b"payload", 1.0)
        reads_before = backend.disk.stats.reads
        assert backend.peek("a") == b"payload"
        assert backend.disk.stats.reads == reads_before
        assert backend.stats.reads == 0

    def test_peek_missing_token_raises(self):
        backend = self.make_backend()
        with pytest.raises(ChunkLogError):
            backend.peek("ghost")

    def test_space_gauges_sum_over_the_live_set(self):
        backend = self.make_backend()
        backend.put("a", b"x" * PAGE, 1.0)
        backend.put("b", b"y", 2.0)
        assert backend.live_pages == sum(
            backend.pages_for(token) for token in backend.tokens()
        )
        if not self.reclaims_dead_space:
            backend.put("a", b"z", 3.0)  # in place: nothing goes dead
            assert backend.dead_pages == 0

    def test_close_is_idempotent_and_blocks_operations(self):
        backend = self.make_backend()
        backend.put("a", b"x", 1.0)
        backend.close()
        backend.close()
        with pytest.raises(ChunkLogError):
            backend.put("b", b"y", 1.0)
        with pytest.raises(ChunkLogError):
            backend.get("a")

    def test_reopen_revives_a_closed_backend(self):
        backend = self.make_backend()
        backend.put("a", b"x", 1.0)
        backend.close()
        recovery = backend.reopen()
        assert recovery.live_entries == 1
        assert backend.get("a") == b"x"
        backend.put("b", b"y", 2.0)
        assert len(backend) == 2

    # ------------------------------------------------------------------
    # Accounting: the canonical charging currency and conservation

    def test_pages_charged_match_the_canonical_framing(self):
        # Every backend charges ceil(record_length / page_size) pages
        # regardless of its physical layout — the identity that keeps
        # chaos digests comparable across backends.
        backend = self.make_backend()
        shapes = [("t", b""), ("tok", b"x" * 40),
                  ("long-token", b"y" * PAGE), ("z", b"z" * (3 * PAGE + 1))]
        for token, payload in shapes:
            pages = backend.put(token, payload, 1.0)
            assert pages == ceil_pages(record_length(token, payload)), (
                token, len(payload)
            )

    def test_conservation_across_mixed_operations(self):
        backend = self.make_backend()
        backend.put("a", b"x" * (3 * PAGE), 1.0)
        backend.put("b", b"y", 2.0)
        backend.get("a")
        backend.delete("b")
        backend.put("a", b"x" * 2, 3.0)
        backend.clear()
        check_l2_conservation(backend)

    def test_faulted_put_charges_partial_pages_only(self):
        backend = self.make_backend()
        backend.put("warm", b"w", 1.0)
        fail_on = {backend.disk.num_pages + 1}  # 2nd page of next record

        def hook(page_id: int) -> float:
            if page_id in fail_on:
                raise DiskFault("boom", page_id=page_id, transient=True)
            return 0.0

        backend.write_hook = hook
        with pytest.raises(DiskFault):
            backend.put("a", b"x" * (3 * PAGE), 2.0)
        backend.write_hook = None
        # The aborted put left the store unchanged...
        assert "a" not in backend
        # ...but pages charged before the fault stay charged, and the
        # logical counters still reconcile with the disk exactly.
        check_l2_conservation(backend)
        assert backend.stats.appends == 1  # only the pre-fault record
        # The store is fully usable afterwards.
        backend.put("a", b"x" * (3 * PAGE), 2.0)
        assert backend.get("a") == b"x" * (3 * PAGE)
        check_l2_conservation(backend)

    def test_faulted_get_conserves_and_record_survives(self):
        backend = self.make_backend()
        backend.put("a", b"x" * (2 * PAGE), 1.0)
        backend.read_hook = always_fault
        with pytest.raises(DiskFault):
            backend.get("a")
        backend.read_hook = None
        check_l2_conservation(backend)
        assert backend.get("a") == b"x" * (2 * PAGE)

    # ------------------------------------------------------------------
    # Torn-write quarantine

    def test_torn_put_is_detected_at_read(self):
        backend = self.make_backend()
        backend.torn_hook = lambda token: token == "torn"
        backend.put("clean", b"ok", 1.0)
        backend.put("torn", b"doomed", 2.0)
        backend.torn_hook = None
        assert backend.stats.torn_writes == 1
        assert backend.get("clean") == b"ok"
        with pytest.raises(ChunkLogCorruption):
            backend.get("torn")
        assert backend.stats.crc_failures == 1
        check_l2_conservation(backend)

    def test_torn_record_survives_restart_until_read(self, tmp_path):
        path = str(tmp_path / "l2.store")
        backend = self.make_backend(path)
        backend.torn_hook = lambda token: True
        backend.put("torn", b"doomed", 2.0)
        backend.torn_hook = None
        backend.close()
        reopened = self.make_backend(path)
        # Well-formed framing: the restart scan keeps the record; the
        # CRC catches the corruption at first access — quarantine, not
        # a wrong answer, and never scan-time rejection.
        assert "torn" in reopened
        with pytest.raises(ChunkLogCorruption):
            reopened.get("torn")

    # ------------------------------------------------------------------
    # Restart recovery

    def test_restart_rebuilds_the_live_set(self, tmp_path):
        path = str(tmp_path / "l2.store")
        backend = self.make_backend(path)
        backend.put("a", b"x" * 10, 1.5)
        backend.put("b", b"y" * 20, 2.5)
        backend.delete("a")
        backend.close()
        reopened = self.make_backend(path)
        assert reopened.recovery.live_entries == 1
        assert reopened.tokens() == ("b",)
        assert reopened.get("b") == b"y" * 20
        assert reopened.benefit("b") == 2.5
        # The restart scan was charged: one read per record page.
        assert reopened.stats.scan_pages >= 1
        check_l2_conservation(reopened)

    def test_inplace_reopen_preserves_records(self):
        # In-memory stores must survive reopen() too: their live state
        # doubles as the durable bytes.
        backend = self.make_backend()
        backend.put("a", b"x" * 10, 1.5)
        backend.put("b", b"y", 2.5)
        backend.delete("b")
        scans_before = backend.stats.scan_pages
        recovery = backend.reopen()
        assert recovery.live_entries == 1
        assert backend.get("a") == b"x" * 10
        assert backend.stats.scan_pages > scans_before
        check_l2_conservation(backend)

    def test_clear_survives_restart(self, tmp_path):
        path = str(tmp_path / "l2.store")
        backend = self.make_backend(path)
        backend.put("a", b"x", 1.0)
        backend.clear()
        backend.put("b", b"y", 2.0)
        backend.close()
        reopened = self.make_backend(path)
        assert reopened.tokens() == ("b",)

    def test_unreadable_durable_state_resets_to_empty(self, tmp_path):
        path = str(tmp_path / "l2.store")
        with open(path, "wb") as handle:
            handle.write(b"NOPE" + b"\x00" * 40)
        backend = self.make_backend(path)
        assert backend.recovery.header_reset is True
        assert len(backend) == 0
        # The reset store is immediately usable and durable again.
        backend.put("a", b"x", 1.0)
        backend.close()
        assert self.make_backend(path).tokens() == ("a",)

    # ------------------------------------------------------------------
    # Compaction

    def test_compact_on_empty_store_is_a_noop(self):
        backend = self.make_backend()
        assert backend.compact() == 0
        assert backend.counters()["dead_pages"] == 0

    def test_compact_leaves_no_dead_space_and_keeps_every_payload(self):
        backend = self.make_backend()
        backend.put("a", b"x" * (2 * PAGE), 1.0)
        backend.put("b", b"y" * 8, 2.0)
        backend.put("a", b"z" * 4, 3.0)  # supersede
        backend.delete("b")
        counters = backend.counters()
        if self.reclaims_dead_space:
            assert counters["dead_pages"] > 0
            reclaimed = backend.compact()
            assert reclaimed == counters["dead_pages"]
            assert backend.stats.compactions == 1
            assert backend.stats.reclaimed_pages == reclaimed
        else:
            # In-place layouts never accumulate dead space.
            assert counters["dead_pages"] == 0
            assert backend.compact() == 0
        after = backend.counters()
        assert after["dead_pages"] == 0
        assert backend.tokens() == ("a",)
        assert backend.get("a") == b"z" * 4
        assert backend.benefit("a") == 3.0
        check_l2_conservation(backend)

    def test_compacted_state_is_durable(self, tmp_path):
        path = str(tmp_path / "l2.store")
        backend = self.make_backend(path)
        backend.put("a", b"x" * PAGE, 1.0)
        backend.put("a", b"y" * 8, 2.0)
        backend.put("b", b"z" * 8, 3.0)
        backend.compact()
        backend.close()
        reopened = self.make_backend(path)
        assert reopened.tokens() == ("a", "b")
        assert reopened.get("a") == b"y" * 8
        assert reopened.get("b") == b"z" * 8
        assert reopened.counters()["dead_pages"] == 0

    # ------------------------------------------------------------------
    # Fault retry/degrade behind the tiered cache

    def _tiered_over(self, backend, capacity_chunks=1, **kwargs):
        capacity = capacity_chunks * make_chunk().size_bytes
        return TieredChunkCache(ChunkCache(capacity), backend, **kwargs)

    def test_spill_write_fault_drops_the_copy_not_the_truth(self):
        backend = self.make_backend()
        tiered = self._tiered_over(backend)
        backend.write_hook = always_fault
        tiered.put(make_chunk(number=0, fill=0))
        tiered.put(make_chunk(number=1, fill=1))  # evicts #0; spill faults
        backend.write_hook = None
        l2 = tiered.tiers()["l2"]
        assert (l2["spills"], l2["spill_faults"]) == (0, 1)
        assert len(backend) == 0
        assert tiered.get(make_chunk(number=1).key) is not None
        tiered.check_conservation()

    def test_repeated_spill_faults_degrade_the_tier(self):
        backend = self.make_backend()
        tiered = self._tiered_over(backend, failure_limit=2)
        backend.write_hook = always_fault
        for n in range(4):
            tiered.put(make_chunk(number=n, fill=n))
        backend.write_hook = None
        l2 = tiered.tiers()["l2"]
        assert l2["degraded"] is True
        assert l2["spill_faults"] == 2  # strikes stop once disabled
        tiered.check_conservation()

    def test_promote_read_fault_is_a_miss_not_a_loss(self):
        backend = self.make_backend()
        tiered = self._tiered_over(backend)
        tiered.put(make_chunk(number=0, fill=0))
        tiered.put(make_chunk(number=1, fill=1))  # #0 spilled to L2
        key = make_chunk(number=0).key
        backend.read_hook = always_fault
        assert tiered.get(key) is None
        backend.read_hook = None
        l2 = tiered.tiers()["l2"]
        assert l2["promote_faults"] == 1
        assert l2["degraded"] is False
        # The record survived the faulted promotion.
        got = tiered.get(key)
        assert got is not None and got.rows["D0"][0] == 0
        tiered.check_conservation()

    # ------------------------------------------------------------------
    # Budget eviction order

    def test_budget_evicts_lowest_benefit_first(self):
        backend = self.make_backend()
        size = len(encode_chunk(make_chunk(number=0, benefit=5.0)))
        tiered = self._tiered_over(backend, l2_budget_bytes=2 * size)
        chunks = [
            make_chunk(number=0, benefit=5.0, fill=0),
            make_chunk(number=1, benefit=1.0, fill=1),
            make_chunk(number=2, benefit=3.0, fill=2),
            make_chunk(number=3, benefit=4.0, fill=3),
        ]
        for chunk in chunks:  # 1-chunk L1: each put spills its elder
            tiered.put(chunk)
        # Spilled in order: benefits 5.0, 1.0, then 3.0 — which needs
        # room, so the lowest-benefit resident (1.0) is evicted.
        assert chunk_token(chunks[0].key) in backend
        assert chunk_token(chunks[1].key) not in backend
        assert chunk_token(chunks[2].key) in backend
        l2 = tiered.tiers()["l2"]
        assert l2["evictions"] == 1
        assert backend.live_bytes <= 2 * size
        tiered.check_conservation()

    def test_oversized_record_is_skipped_not_wedged(self):
        backend = self.make_backend()
        size = len(encode_chunk(make_chunk(number=0)))
        tiered = self._tiered_over(backend, l2_budget_bytes=size - 1)
        tiered.put(make_chunk(number=0, fill=0))
        tiered.put(make_chunk(number=1, fill=1))  # spill cannot ever fit
        l2 = tiered.tiers()["l2"]
        assert l2["budget_skipped"] == 1
        assert l2["evictions"] == 0
        assert len(backend) == 0
        tiered.check_conservation()
