"""Tests for repro.storage.dimtable."""

import pytest

from repro.exceptions import FileFormatError
from repro.schema.builder import build_dimension
from repro.storage.buffer import BufferPool
from repro.storage.dimtable import DimensionTable
from repro.storage.disk import SimulatedDisk


@pytest.fixture()
def dimension():
    return build_dimension(
        "store", [2, 4, 12], level_names=["state", "city", "sname"]
    )


class TestBuildAndScan:
    def test_all_rows_present(self, dimension):
        table = DimensionTable.build(SimulatedDisk(256), dimension)
        rows = list(table.scan())
        assert len(rows) == 12
        assert table.num_rows == 12
        assert [ordinal for ordinal, _ in rows] == list(range(12))

    def test_rows_carry_ancestor_values(self, dimension):
        table = DimensionTable.build(SimulatedDisk(256), dimension)
        for ordinal, values in table.scan():
            assert len(values) == 3
            expected = tuple(
                str(
                    dimension.value_of(
                        level,
                        dimension.ancestor_ordinal(3, ordinal, level),
                    )
                )
                for level in (1, 2, 3)
            )
            assert values == expected

    def test_spans_multiple_pages(self, dimension):
        table = DimensionTable.build(SimulatedDisk(128), dimension)
        assert table.num_pages > 1
        assert len(list(table.scan())) == 12


class TestLookup:
    def test_lookup_matches_scan(self, dimension):
        table = DimensionTable.build(SimulatedDisk(128), dimension)
        scanned = dict(table.scan())
        for ordinal in range(12):
            assert table.lookup(ordinal) == scanned[ordinal]

    def test_lookup_costs_one_page(self, dimension):
        disk = SimulatedDisk(128)
        table = DimensionTable.build(disk, dimension)
        disk.reset_stats()
        table.lookup(7)
        assert disk.stats.reads == 1

    def test_lookup_through_pool(self, dimension):
        disk = SimulatedDisk(128)
        pool = BufferPool(disk, 4)
        table = DimensionTable.build(disk, dimension, buffer_pool=pool)
        disk.reset_stats()
        table.lookup(3)
        table.lookup(3)
        assert disk.stats.reads == 1

    def test_out_of_range(self, dimension):
        table = DimensionTable.build(SimulatedDisk(256), dimension)
        with pytest.raises(FileFormatError):
            table.lookup(12)
        with pytest.raises(FileFormatError):
            table.lookup(-1)


class TestUnicode:
    def test_non_ascii_members(self):
        from repro.schema.dimension import Dimension
        from repro.schema.hierarchy import Hierarchy, Level

        dim = Dimension(
            "city",
            Hierarchy([Level(1, "city", 3)]),
            members={1: ["Zürich", "München", "København"]},
        )
        table = DimensionTable.build(SimulatedDisk(256), dim)
        assert table.lookup(1) == ("München",)
