"""Compaction crash-safety: every write boundary is a safe kill point.

The contract under test (``ChunkLog.compact``): live records are
rewritten into a sidecar and atomically swapped in; until the swap the
old file is the truth, and a fault at *any* point — any record index,
any sidecar page, any append page — leaves a state from which reopen
recovers the exact pre-crash live set, with page conservation intact.

The op sequences are Hypothesis-generated; the kill points are then
enumerated *exhaustively* for each sequence (every compact record
index, every compact write page, every append page), because "crash-safe
at every write boundary" is a universal claim, not a sampled one.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ChunkLogCorruption, DiskFault
from repro.storage.chunklog import COMPACT_SUFFIX, ChunkLog
from repro.storage.l2 import check_l2_conservation

PAGE = 256

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete"]),
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=0, max_value=3 * PAGE),
    ),
    min_size=1,
    max_size=12,
)


def apply_ops(log, ops):
    for kind, token, size in ops:
        if kind == "put":
            log.put(token, bytes([ord(token)]) * size, float(size))
        else:
            log.delete(token)


def live_set(log):
    return {token: log.peek(token) for token in log.tokens()}


def fault_on_nth_write(n):
    """A write hook that faults on its ``n``-th page, then passes."""
    state = {"count": 0}

    def hook(page_id):
        index = state["count"]
        state["count"] += 1
        if index == n:
            raise DiskFault("boom", page_id=page_id, transient=True)
        return 0.0

    return hook


class TestCompactionCrashPoints:
    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy)
    def test_abort_at_every_record_index_recovers_the_live_set(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "log.bin")
            log = ChunkLog(path, page_size=PAGE)
            apply_ops(log, ops)
            expected = live_set(log)
            # Kill the compaction at record 0, then 1, ... until it
            # finally runs to completion: every abort must leave the
            # log byte-identical and reconciled.
            index = 0
            while True:
                log.compact_hook = lambda i, k=index: i == k
                try:
                    reclaimed = log.compact()
                except DiskFault:
                    log.compact_hook = None
                    assert not os.path.exists(path + COMPACT_SUFFIX)
                    assert live_set(log) == expected
                    check_l2_conservation(log)
                    # The durable state is untouched too: a restart
                    # recovers the same live set.
                    log.reopen()
                    assert live_set(log) == expected
                    check_l2_conservation(log)
                    index += 1
                    continue
                break
            log.compact_hook = None
            assert log.counters()["dead_pages"] == 0
            if reclaimed > 0:
                assert log.stats.compactions == 1
            assert live_set(log) == expected
            check_l2_conservation(log)
            # The compacted file is itself a valid, complete log.
            log.reopen()
            assert live_set(log) == expected
            check_l2_conservation(log)

    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy)
    def test_fault_at_every_compact_write_page_recovers(self, ops):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "log.bin")
            log = ChunkLog(path, page_size=PAGE)
            apply_ops(log, ops)
            expected = live_set(log)
            page = 0
            while True:
                log.write_hook = fault_on_nth_write(page)
                try:
                    log.compact()
                except DiskFault:
                    log.write_hook = None
                    assert not os.path.exists(path + COMPACT_SUFFIX)
                    assert live_set(log) == expected
                    check_l2_conservation(log)
                    log.reopen()
                    assert live_set(log) == expected
                    page += 1
                    continue
                break
            log.write_hook = None
            assert log.counters()["dead_pages"] == 0
            assert live_set(log) == expected
            check_l2_conservation(log)

    @settings(max_examples=25, deadline=None)
    @given(
        ops=ops_strategy,
        pages=st.integers(min_value=2, max_value=4),
    )
    def test_fault_at_every_append_page_recovers(self, ops, pages):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "log.bin")
            log = ChunkLog(path, page_size=PAGE)
            apply_ops(log, ops)
            expected = live_set(log)
            payload = b"\xab" * (pages * PAGE - 64)
            for page in range(pages):
                log.write_hook = fault_on_nth_write(page)
                with pytest.raises(DiskFault):
                    log.put("victim", payload, 9.0)
                log.write_hook = None
                assert "victim" not in log
                assert live_set(log) == expected
                check_l2_conservation(log)
                # A crash here recovers the pre-put live set exactly.
                log.reopen()
                assert live_set(log) == expected
                check_l2_conservation(log)
            # With the fault gone the same put lands cleanly.
            log.put("victim", payload, 9.0)
            assert log.peek("victim") == payload
            check_l2_conservation(log)


class TestCompactionCrashArtifacts:
    def test_stale_partial_sidecar_is_discarded_on_open(self, tmp_path):
        # Simulate a process killed mid-compaction, after the sidecar
        # was partially written but before the atomic swap: the next
        # open must ignore and remove the sidecar, never replay it.
        path = str(tmp_path / "log.bin")
        log = ChunkLog(path, page_size=PAGE)
        log.put("a", b"x" * 10, 1.0)
        log.put("b", b"y" * 10, 2.0)
        log.close()
        with open(path + COMPACT_SUFFIX, "wb") as handle:
            handle.write(b"RCLG\x01\x00")  # torn mid-header
        reopened = ChunkLog(path, page_size=PAGE)
        assert not os.path.exists(path + COMPACT_SUFFIX)
        assert reopened.tokens() == ("a", "b")
        assert reopened.peek("a") == b"x" * 10

    def test_torn_record_stays_torn_through_compaction(self, tmp_path):
        # Compaction copies records verbatim: a torn-but-framed record
        # keeps its bad CRC, so the quarantine policy survives both the
        # rewrite and a restart of the rewritten log.
        path = str(tmp_path / "log.bin")
        log = ChunkLog(path, page_size=PAGE)
        log.torn_hook = lambda token: token == "torn"
        log.put("torn", b"doomed", 1.0)
        log.torn_hook = None
        log.put("stale", b"old", 1.0)
        log.put("stale", b"new", 2.0)  # dead space so compact runs
        assert log.compact() > 0
        with pytest.raises(ChunkLogCorruption):
            log.get("torn")
        log.close()
        reopened = ChunkLog(path, page_size=PAGE)
        assert "torn" in reopened
        with pytest.raises(ChunkLogCorruption):
            reopened.get("torn")
        assert reopened.peek("stale") == b"new"

    def test_in_memory_log_compacts_without_a_sidecar(self):
        log = ChunkLog(page_size=PAGE)
        log.put("a", b"x" * PAGE, 1.0)
        log.put("a", b"y" * 4, 2.0)
        assert log.compact() > 0
        assert log.counters()["dead_pages"] == 0
        assert log.peek("a") == b"y" * 4
        log.reopen()
        assert log.peek("a") == b"y" * 4
        check_l2_conservation(log)
