"""Tests for repro.storage.buffer — the CLOCK buffer pool."""

import pytest

from repro.exceptions import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.disk import SimulatedDisk


@pytest.fixture()
def disk():
    d = SimulatedDisk(page_size=64)
    for i in range(10):
        pid = d.allocate()
        d.write_page(pid, bytes([i]) * 8)
    d.reset_stats()
    return d


class TestBufferPool:
    def test_miss_then_hit(self, disk):
        pool = BufferPool(disk, capacity_pages=4)
        first = pool.get_page(0)
        second = pool.get_page(0)
        assert first == second
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert disk.stats.reads == 1  # only the miss touched the disk

    def test_capacity_respected(self, disk):
        pool = BufferPool(disk, capacity_pages=3)
        for pid in range(5):
            pool.get_page(pid)
        assert len(pool) == 3
        assert pool.stats.evictions == 2

    def test_clock_gives_second_chance(self, disk):
        pool = BufferPool(disk, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # reference 0 again
        pool.get_page(2)  # evicts one of 0/1; 0 was recently referenced
        assert pool.contains(0) or pool.contains(1)
        assert pool.contains(2)

    def test_write_through_updates_buffer(self, disk):
        pool = BufferPool(disk, capacity_pages=2)
        pool.get_page(3)
        pool.put_page(3, b"fresh")
        assert pool.get_page(3)[:5] == b"fresh"
        assert disk.read_page(3)[:5] == b"fresh"

    def test_write_through_uncached_page(self, disk):
        pool = BufferPool(disk, capacity_pages=2)
        pool.put_page(4, b"new")
        assert disk.read_page(4)[:3] == b"new"

    def test_flush_drops_frames_keeps_stats(self, disk):
        pool = BufferPool(disk, capacity_pages=2)
        pool.get_page(0)
        pool.flush()
        assert len(pool) == 0
        assert pool.stats.misses == 1
        pool.get_page(0)
        assert pool.stats.misses == 2

    def test_reset_stats(self, disk):
        pool = BufferPool(disk, capacity_pages=2)
        pool.get_page(0)
        pool.reset_stats()
        assert pool.stats.accesses == 0

    def test_hit_ratio(self, disk):
        pool = BufferPool(disk, capacity_pages=2)
        assert pool.stats.hit_ratio == 0.0
        pool.get_page(0)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.hit_ratio == pytest.approx(2 / 3)

    def test_zero_capacity_rejected(self, disk):
        with pytest.raises(BufferPoolError):
            BufferPool(disk, capacity_pages=0)

    def test_heavy_churn_consistent(self, disk):
        pool = BufferPool(disk, capacity_pages=3)
        for i in range(100):
            page = pool.get_page(i % 7)
            assert page[:1] == bytes([i % 7])
        assert len(pool) == 3


from hypothesis import given, settings, strategies as st


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 8),
    accesses=st.lists(st.integers(0, 9), max_size=80),
)
def test_pool_always_returns_current_disk_contents(capacity, accesses):
    """Whatever the replacement pattern, reads reflect the latest writes."""
    disk = SimulatedDisk(page_size=64)
    contents = {}
    for i in range(10):
        pid = disk.allocate()
        payload = bytes([i]) * 8
        disk.write_page(pid, payload)
        contents[pid] = payload
    pool = BufferPool(disk, capacity)
    for step, pid in enumerate(accesses):
        if step % 7 == 3:
            payload = bytes([step % 250]) * 8
            pool.put_page(pid, payload)
            contents[pid] = payload
        got = pool.get_page(pid)
        assert got[:8] == contents[pid]
        assert len(pool) <= capacity
