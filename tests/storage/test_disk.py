"""Tests for repro.storage.disk."""

import pytest

from repro.exceptions import PageError
from repro.storage.disk import DiskStats, IOTracker, SimulatedDisk


class TestSimulatedDisk:
    def test_allocate_sequential(self):
        disk = SimulatedDisk(page_size=256)
        assert disk.allocate() == 0
        assert disk.allocate(3) == 1
        assert disk.num_pages == 4
        assert disk.stats.allocations == 4

    def test_allocate_zero_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(PageError):
            disk.allocate(0)

    def test_read_write_roundtrip(self):
        disk = SimulatedDisk(page_size=256)
        pid = disk.allocate()
        disk.write_page(pid, b"hello")
        assert disk.read_page(pid)[:5] == b"hello"
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1

    def test_unwritten_page_reads_zeros(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        assert disk.read_page(pid) == bytes(64)

    def test_short_payload_allowed_long_rejected(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        disk.write_page(pid, b"x")
        with pytest.raises(PageError):
            disk.write_page(pid, b"y" * 65)

    def test_out_of_range_page(self):
        disk = SimulatedDisk()
        with pytest.raises(PageError):
            disk.read_page(0)
        disk.allocate()
        with pytest.raises(PageError):
            disk.read_page(1)
        with pytest.raises(PageError):
            disk.write_page(-1, b"")

    def test_tiny_page_size_rejected(self):
        with pytest.raises(PageError):
            SimulatedDisk(page_size=16)

    def test_reset_stats_keeps_pages(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        disk.write_page(pid, b"abc")
        disk.reset_stats()
        assert disk.stats.reads == 0
        assert disk.read_page(pid)[:3] == b"abc"


class TestWriteHook:
    def test_raising_hook_aborts_before_any_effect(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        disk.write_page(pid, b"before")

        def hook(page_id):
            raise PageError(f"injected on page {page_id}")

        disk.write_hook = hook
        with pytest.raises(PageError, match="injected"):
            disk.write_page(pid, b"after")
        disk.write_hook = None
        # The faulted write counted nothing and stored nothing.
        assert disk.stats.writes == 1
        assert disk.read_page(pid)[:6] == b"before"

    def test_latency_hook_charges_fault_latency(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        disk.write_hook = lambda page_id: 0.25
        disk.write_page(pid, b"x")
        disk.write_page(pid, b"y")
        disk.write_hook = None
        assert disk.stats.writes == 2
        assert disk.stats.fault_latency == 0.5

    def test_hook_sees_the_page_id(self):
        disk = SimulatedDisk(page_size=64)
        pages = [disk.allocate() for _ in range(3)]
        seen = []
        disk.write_hook = lambda page_id: seen.append(page_id) or 0.0
        for pid in pages:
            disk.write_page(pid, b"")
        disk.write_hook = None
        assert seen == pages


class TestDiskStats:
    def test_copy_is_independent(self):
        stats = DiskStats(reads=1)
        copy = stats.copy()
        stats.reads = 9
        assert copy.reads == 1

    def test_delta(self):
        before = DiskStats(reads=2, writes=1, allocations=0)
        after = DiskStats(reads=5, writes=1, allocations=3)
        delta = after.delta(before)
        assert (delta.reads, delta.writes, delta.allocations) == (3, 0, 3)


class TestIOTracker:
    def test_measures_block(self):
        disk = SimulatedDisk(page_size=64)
        pid = disk.allocate()
        disk.write_page(pid, b"a")
        with IOTracker(disk) as io:
            disk.read_page(pid)
            disk.read_page(pid)
            disk.write_page(pid, b"b")
        assert io.reads == 2
        assert io.writes == 1
        assert io.allocations == 0
