"""Tests for repro.storage.record."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import FileFormatError
from repro.storage.record import (
    RecordFormat,
    fact_record_format,
    groupby_record_format,
)


@pytest.fixture()
def fmt():
    return RecordFormat([("a", "i4"), ("b", "i4"), ("x", "f8")])


class TestRecordFormat:
    def test_size_and_names(self, fmt):
        assert fmt.record_size == 16
        assert fmt.field_names == ("a", "b", "x")

    def test_empty_fields_rejected(self):
        with pytest.raises(FileFormatError):
            RecordFormat([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(FileFormatError):
            RecordFormat([("a", "i4"), ("a", "f8")])

    def test_records_per_page(self, fmt):
        assert fmt.records_per_page(160) == 10
        assert fmt.records_per_page(160, header_size=16) == 9

    def test_record_too_big_for_page(self, fmt):
        with pytest.raises(FileFormatError):
            fmt.records_per_page(12)

    def test_tuple_roundtrip(self, fmt):
        rows = [(1, 2, 3.5), (4, 5, 6.25)]
        array = fmt.from_tuples(rows)
        assert fmt.to_tuples(array) == rows

    def test_pack_unpack_roundtrip(self, fmt):
        array = fmt.from_tuples([(1, 2, 3.0), (7, 8, 9.0)])
        payload = fmt.pack(array)
        assert len(payload) == 2 * fmt.record_size
        back = fmt.unpack(payload)
        assert np.array_equal(back, array)

    def test_unpack_with_padding_and_count(self, fmt):
        array = fmt.from_tuples([(1, 2, 3.0)])
        payload = fmt.pack(array) + b"\x00" * 7
        back = fmt.unpack(payload, count=1)
        assert back["a"][0] == 1

    def test_unpack_count_too_large(self, fmt):
        with pytest.raises(FileFormatError):
            fmt.unpack(b"\x00" * 8, count=1)

    def test_pack_wrong_dtype_rejected(self, fmt):
        wrong = np.zeros(1, dtype=[("a", "i8")])
        with pytest.raises(FileFormatError):
            fmt.pack(wrong)

    def test_unpack_result_is_writable_copy(self, fmt):
        array = fmt.from_tuples([(1, 2, 3.0)])
        back = fmt.unpack(fmt.pack(array))
        back["a"][0] = 99  # must not raise

    def test_equality_and_hash(self, fmt):
        same = RecordFormat([("a", "i4"), ("b", "i4"), ("x", "f8")])
        other = RecordFormat([("a", "i8")])
        assert fmt == same and hash(fmt) == hash(same)
        assert fmt != other

    @given(
        st.lists(
            st.tuples(
                st.integers(-(2**31), 2**31 - 1),
                st.integers(-(2**31), 2**31 - 1),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=50,
        )
    )
    def test_roundtrip_property(self, rows):
        fmt = RecordFormat([("a", "i4"), ("b", "i4"), ("x", "f8")])
        array = fmt.from_tuples(rows)
        assert np.array_equal(fmt.unpack(fmt.pack(array)), array)


class TestSchemaFormats:
    def test_fact_record_format(self, small_schema):
        fmt = fact_record_format(small_schema)
        assert fmt.field_names == ("D0", "D1", "v")
        assert fmt.record_size == 4 + 4 + 8

    def test_groupby_format_drops_all_dims(self, small_schema):
        fmt = groupby_record_format(small_schema, (1, 0))
        assert fmt.field_names == ("D0", "sum_v")

    def test_groupby_format_aggregate_dtypes(self, small_schema):
        fmt = groupby_record_format(
            small_schema,
            (1, 1),
            aggregates=[("v", "count"), ("v", "avg"), ("v", "min")],
        )
        assert fmt.dtype["count_v"] == np.dtype("i8")
        assert fmt.dtype["avg_v"] == np.dtype("f8")
        assert fmt.dtype["min_v"] == np.dtype("f8")
